// Differential test harness: packet-level vs flow-level fidelity.
//
// Every cell of a (topology × pattern × load) grid generates one seeded
// open-loop schedule twice and runs it through core.Run at both
// fidelities — the packet-level discrete-event engine (the reference)
// and the flowsim fluid fast path — then buckets both result sets with
// telemetry.MeasureFCT and asserts the per-bucket FCT p50/p99 of the
// fluid mode lands within a documented tolerance band of the packet
// mode's.
//
// Tolerance rationale. Both engines are seeded and deterministic, so
// each cell's flow/packet percentile ratio is a repeatable constant;
// the bands below were calibrated by running the grid with open bands,
// recording every ratio, and widening the observed envelope by margin
// (see DESIGN.md "Flow-level fidelity" for the full discussion):
//
//   - Uniform/permutation p50 (observed 0.66–1.21, band [0.55, 1.45]):
//     the median flow is latency- or bandwidth-dominated without deep
//     queueing, and the fluid model reproduces both the zero-load path
//     latency and the fair-share transmission time.
//   - Uniform/permutation p99 (observed 0.44–1.21, band [0.35, 1.55]):
//     the packet tail also carries what the fluid model deliberately
//     omits — transient FIFO queue build-up behind Poisson bursts,
//     per-packet serialisation quantisation, PFC pauses — so the fluid
//     tail runs systematically fast.
//   - Incast is the structural fidelity boundary, and its bands say so.
//     Under N:1 fan-in near saturation the packet engine's FIFO queues
//     hold a small flow behind every queued packet of the large flows
//     it shares the victim port with, while max-min filling (which is
//     per-flow fair queueing in the fluid limit) hands it its fair
//     share immediately: at load 0.9 the small-flow-bucket p50 ratio
//     drops to 0.05–0.14. The incast bands (p50 [0.035, 1.5], p99
//     [0.30, 1.9], observed 0.050–1.140 / 0.40–1.51) therefore pin
//     that the divergence stays bounded — an inversion (fluid slower
//     than packet) or a runaway (another order of magnitude) still
//     fails — not that it vanishes.
//
// Buckets with fewer than minBucketCount completed flows in either
// mode are skipped: a p99 over a handful of samples is an order
// statistic of noise, not a distribution.
//
// This test is the acceptance gate for the Fidelity knob: it must stay
// green on at least 3 topologies × 3 patterns × 3 loads.
package flowsim_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// diffRanks and diffFlows size each cell: enough completed flows per
// size bucket for stable p50/p99 order statistics, small enough that
// the packet-level reference stays cheap.
const (
	diffRanks      = 16
	diffFlows      = 240
	minBucketCount = 12
)

// diffBand is one [lo, hi] multiplicative tolerance on flow/packet
// percentile ratios.
type diffBand struct{ lo, hi float64 }

var (
	p50Band       = diffBand{0.55, 1.45}
	p99Band       = diffBand{0.35, 1.55}
	p50IncastBand = diffBand{0.035, 1.5}
	p99IncastBand = diffBand{0.30, 1.9}
)

// diffBase is the ideal-FCT base used for both modes' MeasureFCT —
// identical on purpose, so slowdown ratios cancel to raw-FCT ratios.
func diffBase(cfg netsim.Config) netsim.Time {
	return 2*cfg.HostLatency + cfg.SwitchLatency + 2*cfg.PropDelay
}

func TestDifferentialPacketVsFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("differential grid is 27 packet-level runs")
	}
	topos := []*topology.Graph{
		topology.FatTree(4),
		topology.Dragonfly(4, 9, 2, 1),
		topology.Torus2D(4, 4, 1),
	}
	patterns := []loadgen.Pattern{loadgen.Uniform(), loadgen.Permutation(), loadgen.Incast(8)}
	loads := []float64{0.3, 0.6, 0.9}
	cfg := netsim.DefaultConfig()
	sizes := loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/64)
	bounds := []int{10 * 1024, 100 * 1024}
	base := diffBase(cfg)

	seed := int64(1)
	for _, g := range topos {
		tb, err := core.PaperTestbed([]*topology.Graph{g})
		if err != nil {
			t.Fatal(err)
		}
		for _, pat := range patterns {
			for _, load := range loads {
				g, pat, load := g, pat, load
				cellSeed := seed
				seed++
				name := fmt.Sprintf("%s/%s/load%.1f", g.Name, pat.Name(), load)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					spec := loadgen.Spec{
						Ranks: diffRanks, Pattern: pat, Sizes: sizes,
						Load: load, Flows: diffFlows, Seed: cellSeed,
						LinkBps: cfg.LinkBps,
					}
					pktFlows := spec.MustGenerate().Flows
					fluFlows := spec.MustGenerate().Flows

					if _, err := core.Run(context.Background(), tb, core.Scenario{
						Topo: g, Flows: pktFlows, Mode: core.FullTestbed,
					}); err != nil {
						t.Fatalf("packet run: %v", err)
					}
					if _, err := core.Run(context.Background(), tb, core.Scenario{
						Topo: g, Flows: fluFlows, Mode: core.FullTestbed, Fidelity: core.Flow,
					}); err != nil {
						t.Fatalf("flow run: %v", err)
					}

					pkt := telemetry.MeasureFCT(pktFlows, cfg.LinkBps, base, bounds)
					flu := telemetry.MeasureFCT(fluFlows, cfg.LinkBps, base, bounds)
					if pkt.Completed != pkt.Total {
						t.Fatalf("packet mode completed %d/%d flows", pkt.Completed, pkt.Total)
					}
					if flu.Completed != flu.Total {
						t.Fatalf("flow mode completed %d/%d flows", flu.Completed, flu.Total)
					}

					p50, p99 := p50Band, p99Band
					if pat.Name() == loadgen.Incast(8).Name() {
						p50, p99 = p50IncastBand, p99IncastBand
					}
					for b := range pkt.Buckets {
						pb, fb := &pkt.Buckets[b], &flu.Buckets[b]
						if pb.Count != fb.Count {
							t.Fatalf("bucket %d: packet bucketed %d flows, flow %d (same schedule!)",
								b, pb.Count, fb.Count)
						}
						if pb.Count < minBucketCount {
							t.Logf("bucket [%d,%d): %d flows, skipped", pb.Lo, pb.Hi, pb.Count)
							continue
						}
						r50 := float64(fb.P50FCT) / float64(pb.P50FCT)
						r99 := float64(fb.P99FCT) / float64(pb.P99FCT)
						t.Logf("bucket [%d,%d) n=%d: p50 flow/packet = %.3f, p99 = %.3f",
							pb.Lo, pb.Hi, pb.Count, r50, r99)
						if r50 < p50.lo || r50 > p50.hi {
							t.Errorf("bucket [%d,%d): p50 ratio %.3f outside [%.2f, %.2f] (packet %v, flow %v)",
								pb.Lo, pb.Hi, r50, p50.lo, p50.hi, pb.P50FCT, fb.P50FCT)
						}
						if r99 < p99.lo || r99 > p99.hi {
							t.Errorf("bucket [%d,%d): p99 ratio %.3f outside [%.2f, %.2f] (packet %v, flow %v)",
								pb.Lo, pb.Hi, r99, p99.lo, p99.hi, pb.P99FCT, fb.P99FCT)
						}
					}
				})
			}
		}
	}
}
