// Package flowsim is the flow-level fast path of the testbed: instead
// of moving packets, it treats each flow as a fluid transmitting at the
// max-min fair share of the links it crosses (progressive filling), and
// recomputes the allocation only when the set of active flows changes —
// at flow arrivals and completions. A run's cost therefore scales with
// the number of flows (and their path lengths), not with bytes × hops
// the way packet simulation does, which is what lets loadgen sweeps
// reach 10k–100k-host fabrics (ROADMAP item 2).
//
// Fidelity contract: flows follow the exact compiled routes the packet
// engine forwards with (the walker resolves paths through the same
// FIB/Lookup rules), link capacity is the packet engine's effective
// payload goodput (LinkBps derated by the MTU/(MTU+header) framing
// overhead), concurrent flows between one (src, dst) pair serialise in
// schedule order exactly like the RoCE per-destination queue pair, and
// completion times add the zero-load path latency the packet engine
// charges (NIC, switch pipeline, propagation, cut-through header
// re-serialisation). What the fluid model abstracts away — packet
// granularity, PFC/ECN/DCQCN dynamics, transient queueing — is bounded
// by the differential harness in differential_test.go, which asserts
// per-bucket FCT percentile agreement against the packet engine across
// topologies × patterns × loads; DESIGN.md documents the tolerance
// rationale.
package flowsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Result summarises one flow-level run.
type Result struct {
	// ACT is the completion time of the last flow (0 for an empty
	// schedule) — the same quantity FlowApp.ACT reports.
	ACT netsim.Time
	// Completed counts finished flows; the fluid model never drops, so
	// this equals the schedule length on success.
	Completed int
	// Recomputes counts rate-allocation events (arrival and completion
	// batches) — the flow-level analogue of the packet engine's event
	// count, reported as RunResult.Events.
	Recomputes int64
	// Pairs counts distinct (src, dst) serialisation queues.
	Pairs int
}

// flowState is one flow's fluid state while active.
type flowState struct {
	path      *pathInfo
	remaining float64 // payload bytes left to transmit
	rate      float64 // current allocation, payload bytes per ps
	pair      int32   // serialisation queue id
}

// pendEntry is one pair queue's next injection, ready at `ready` ps.
type pendEntry struct {
	ready float64
	fi    int32
}

// Run executes an open-loop flow schedule at flow-level fidelity over
// the given route set. hosts[i] is the vertex of rank i, exactly as in
// netsim.NewFlowApp, and per-flow End/Completed results are written
// back into the flows slice so telemetry.MeasureFCT consumes them
// identically to a packet-level run. routes may be a subset computation
// (routing.DstComputer) covering at least every destination the
// schedule references.
//
// Validation mirrors NewFlowApp — rank range, self-send, duplicate
// (src, dst, tag) — but returns errors instead of panicking, since
// flow-mode schedules are caller-supplied at sizes where a panic would
// be hostile. A cancelled context returns (nil, ctx.Err()) with the
// per-flow results in an unspecified partial state, matching core.Run's
// cancellation contract.
func Run(ctx context.Context, g *topology.Graph, routes *routing.Routes, cfg netsim.Config, hosts []int, flows []netsim.Flow) (*Result, error) {
	if g == nil || routes == nil {
		return nil, errors.New("flowsim: nil topology or routes")
	}
	if cfg.LinkBps <= 0 || cfg.MTU <= 0 || cfg.HeaderBytes < 0 {
		return nil, fmt.Errorf("flowsim: invalid fabric config (LinkBps=%g MTU=%d HeaderBytes=%d)",
			cfg.LinkBps, cfg.MTU, cfg.HeaderBytes)
	}
	// Effective payload capacity of one directed link: line rate derated
	// by framing overhead, in payload bytes per picosecond.
	capacity := cfg.LinkBps / 8 / float64(netsim.Second) * float64(cfg.MTU) / float64(cfg.MTU+cfg.HeaderBytes)

	type matchKey struct{ src, dst, tag int }
	seen := make(map[matchKey]struct{}, len(flows))
	for i := range flows {
		f := &flows[i]
		if f.Src < 0 || f.Src >= len(hosts) || f.Dst < 0 || f.Dst >= len(hosts) {
			return nil, fmt.Errorf("flowsim: flow %d rank out of range (src=%d dst=%d ranks=%d)", i, f.Src, f.Dst, len(hosts))
		}
		if f.Src == f.Dst {
			return nil, fmt.Errorf("flowsim: flow %d sends to itself (rank %d)", i, f.Src)
		}
		if f.Bytes < 0 {
			return nil, fmt.Errorf("flowsim: flow %d has negative size %d", i, f.Bytes)
		}
		k := matchKey{f.Src, f.Dst, f.Tag}
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("flowsim: duplicate flow (src=%d dst=%d tag=%d)", f.Src, f.Dst, f.Tag)
		}
		seen[k] = struct{}{}
		f.End, f.Completed = 0, false
	}

	// Resolve every flow's path and serialisation queue up front.
	w := newWalker(g, routes, &cfg)
	st := make([]flowState, len(flows))
	pairOf := map[[2]int]int32{}
	var pairQ [][]int32 // pair id → flow indices in injection order
	order := injectionOrder(flows)
	for _, fi := range order {
		f := &flows[fi]
		src, dst := hosts[f.Src], hosts[f.Dst]
		p, err := w.path(src, dst)
		if err != nil {
			return nil, err
		}
		key := [2]int{src, dst}
		pid, ok := pairOf[key]
		if !ok {
			pid = int32(len(pairQ))
			pairOf[key] = pid
			pairQ = append(pairQ, nil)
		}
		pairQ[pid] = append(pairQ[pid], fi)
		st[fi] = flowState{path: p, pair: pid, remaining: float64(f.Bytes)}
	}

	e := &engine{
		flows:    flows,
		st:       st,
		pairQ:    pairQ,
		pairNext: make([]int32, len(pairQ)),
		capacity: capacity,
		nLinks:   2 * len(g.Edges),
	}
	// Arm each pair queue's first injection at its start time.
	for pid := range pairQ {
		fi := pairQ[pid][0]
		e.pushPending(pendEntry{ready: math.Max(0, float64(flows[fi].Start)), fi: fi})
	}
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	return &Result{
		ACT:        e.last,
		Completed:  e.completed,
		Recomputes: e.recomputes,
		Pairs:      len(pairQ),
	}, nil
}

// injectionOrder sorts flow indices by start time, ties by index — the
// same deterministic schedule order NewFlowApp injects with.
func injectionOrder(flows []netsim.Flow) []int32 {
	order := make([]int32, len(flows))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		x, y := order[i], order[j]
		if flows[x].Start != flows[y].Start {
			return flows[x].Start < flows[y].Start
		}
		return x < y
	})
	return order
}

// engine is the event loop state: time advances to the earlier of the
// next eligible injection and the earliest completion under the current
// rates, and the max-min allocation is recomputed whenever the active
// set changes.
type engine struct {
	flows    []netsim.Flow
	st       []flowState
	pairQ    [][]int32
	pairNext []int32 // pair id → next index into pairQ (head already pending/active)
	pending  []pendEntry
	active   []int32
	capacity float64
	nLinks   int

	t          float64
	last       netsim.Time
	completed  int
	recomputes int64

	// fair-share scratch, reused across recomputes.
	linkLocal []int32 // directed link id → local index + 1, 0 = unused
	usedLinks []int32
	caps      []float64
	linkLists [][]int32
	rates     []float64
	fair      fairScratch
}

func (e *engine) run(ctx context.Context) error {
	// Each iteration admits at least one injection or retires at least
	// one completion, so the loop is bounded by 2n events; the guard
	// catches numeric stalls instead of hanging.
	maxIter := 2*len(e.flows) + 16
	for iter := 0; len(e.pending) > 0 || len(e.active) > 0; iter++ {
		if iter > maxIter {
			return fmt.Errorf("flowsim: event loop exceeded %d iterations (numeric stall?)", maxIter)
		}
		if iter%64 == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		nextArr := math.Inf(1)
		if len(e.pending) > 0 {
			nextArr = e.pending[0].ready
		}
		nextDone := math.Inf(1)
		for _, fi := range e.active {
			s := &e.st[fi]
			if d := e.t + s.remaining/s.rate; d < nextDone {
				nextDone = d
			}
		}
		te := math.Min(nextArr, nextDone)
		// Drain transmitted bytes up to te.
		for _, fi := range e.active {
			s := &e.st[fi]
			s.remaining -= s.rate * (te - e.t)
		}
		e.t = te
		changed := false
		if nextDone <= te {
			changed = e.completeDue() || changed
		}
		for len(e.pending) > 0 && e.pending[0].ready <= e.t {
			changed = e.admit(e.popPending()) || changed
		}
		if changed && len(e.active) > 0 {
			e.recompute()
		}
	}
	return nil
}

// completeDue retires every active flow whose remaining payload has
// drained (within half a byte — the event time was chosen as some
// flow's exact completion, so at least one always retires). Completion
// stamps End = transmit-done + the path's zero-load latency, and
// releases the pair queue's successor.
func (e *engine) completeDue() bool {
	const epsBytes = 0.5
	out := e.active[:0]
	done := false
	for _, fi := range e.active {
		s := &e.st[fi]
		if s.remaining > epsBytes {
			out = append(out, fi)
			continue
		}
		e.finish(fi)
		done = true
	}
	e.active = out
	return done
}

// finish records flow fi's completion at the current time and arms the
// next flow of its pair queue.
func (e *engine) finish(fi int32) {
	f := &e.flows[fi]
	f.Completed = true
	f.End = netsim.Time(math.Round(e.t + e.st[fi].path.base))
	if f.End > e.last {
		e.last = f.End
	}
	e.completed++
	pid := e.st[fi].pair
	e.pairNext[pid]++
	if int(e.pairNext[pid]) < len(e.pairQ[pid]) {
		nxt := e.pairQ[pid][e.pairNext[pid]]
		e.pushPending(pendEntry{ready: math.Max(e.t, float64(e.flows[nxt].Start)), fi: nxt})
	}
}

// admit moves one injected flow into the active set; zero-byte flows
// complete immediately without transmitting.
func (e *engine) admit(p pendEntry) bool {
	if e.st[p.fi].remaining <= 0 {
		e.finish(p.fi)
		return false
	}
	e.active = append(e.active, p.fi)
	return true
}

// recompute rebuilds the max-min allocation over the active set. Only
// links some active flow crosses participate; the dense directed-link
// table maps them to a compact index so fairShare scans stay
// proportional to the congested region, not the fabric.
func (e *engine) recompute() {
	e.recomputes++
	if e.linkLocal == nil {
		e.linkLocal = make([]int32, e.nLinks)
	}
	e.usedLinks = e.usedLinks[:0]
	e.caps = e.caps[:0]
	if cap(e.linkLists) < len(e.active) {
		e.linkLists = make([][]int32, 0, len(e.active))
	}
	e.linkLists = e.linkLists[:len(e.active)]
	if cap(e.rates) < len(e.active) {
		e.rates = make([]float64, len(e.active))
	}
	e.rates = e.rates[:len(e.active)]
	for ai, fi := range e.active {
		path := e.st[fi].path.links
		local := e.linkLists[ai][:0]
		for _, gl := range path {
			if e.linkLocal[gl] == 0 {
				e.usedLinks = append(e.usedLinks, gl)
				e.caps = append(e.caps, e.capacity)
				e.linkLocal[gl] = int32(len(e.usedLinks))
			}
			local = append(local, e.linkLocal[gl]-1)
		}
		e.linkLists[ai] = local
	}
	e.fair.run(e.caps, e.linkLists, e.rates)
	for ai, fi := range e.active {
		e.st[fi].rate = e.rates[ai]
	}
	for _, gl := range e.usedLinks {
		e.linkLocal[gl] = 0
	}
}

// pushPending / popPending: a binary min-heap on (ready, flow index) —
// deterministic total order, one entry per pair queue at most.
func (e *engine) pushPending(p pendEntry) {
	e.pending = append(e.pending, p)
	i := len(e.pending) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pendLess(e.pending[i], e.pending[parent]) {
			break
		}
		e.pending[i], e.pending[parent] = e.pending[parent], e.pending[i]
		i = parent
	}
}

func (e *engine) popPending() pendEntry {
	top := e.pending[0]
	n := len(e.pending) - 1
	e.pending[0] = e.pending[n]
	e.pending = e.pending[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && pendLess(e.pending[l], e.pending[min]) {
			min = l
		}
		if r < n && pendLess(e.pending[r], e.pending[min]) {
			min = r
		}
		if min == i {
			break
		}
		e.pending[i], e.pending[min] = e.pending[min], e.pending[i]
		i = min
	}
	return top
}

func pendLess(a, b pendEntry) bool {
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	return a.fi < b.fi
}
