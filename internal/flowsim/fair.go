package flowsim

// Max-min fair-share allocation by progressive filling (water-filling):
// every unfrozen flow's rate rises uniformly until some link saturates,
// the flows crossing a saturated link freeze at their current rate, and
// filling continues with the survivors until every flow is frozen. The
// result is the unique max-min allocation: no flow's rate can be
// increased without decreasing the rate of a flow that is no faster.
//
// caps[l] is link l's capacity, links[f] lists the links flow f
// crosses, and rates[f] receives f's allocation. Units are whatever the
// caller uses (the engine passes payload bytes per picosecond). A flow
// crossing a zero-capacity link is frozen at rate 0. The computation is
// deterministic — identical inputs produce identical outputs;
// FuzzFairShare pins the invariants (no link over capacity,
// non-negative rates, max-min).

// fairScratch reuses the filling loop's working set across recomputes:
// the allocation runs once per arrival/completion event, so per-call
// allocation would dominate the fluid engine's profile.
type fairScratch struct {
	rem      []float64
	cnt      []int32
	unfrozen []int32
}

// run computes the allocation. Each round scans only the still-unfrozen
// flows (compacted in place, preserving index order for determinism);
// at least the arg-min link saturates per round, so the loop
// terminates.
func (fs *fairScratch) run(caps []float64, links [][]int32, rates []float64) {
	const relEps = 1e-9
	nf := len(links)
	fs.rem = append(fs.rem[:0], caps...)
	fs.cnt = fs.cnt[:0]
	for range caps {
		fs.cnt = append(fs.cnt, 0)
	}
	fs.unfrozen = fs.unfrozen[:0]
	for f := 0; f < nf; f++ {
		rates[f] = 0
		for _, l := range links[f] {
			fs.cnt[l]++
		}
		fs.unfrozen = append(fs.unfrozen, int32(f))
	}
	rem, cnt, unfrozen := fs.rem, fs.cnt, fs.unfrozen
	for len(unfrozen) > 0 {
		// The uniform rate increment every unfrozen flow can still take:
		// the tightest link's residual capacity split across its flows.
		s := -1.0
		for l := range rem {
			if cnt[l] > 0 {
				if v := rem[l] / float64(cnt[l]); s < 0 || v < s {
					s = v
				}
			}
		}
		if s < 0 {
			// No unfrozen flow crosses any link (defensive; links[f] is
			// validated non-empty by the engine) — freeze the rest as-is.
			break
		}
		for _, f := range unfrozen {
			rates[f] += s
		}
		for l := range rem {
			if cnt[l] > 0 {
				rem[l] -= s * float64(cnt[l])
			}
		}
		// Keep the flows that cross no saturated link; freeing a frozen
		// flow's links mid-compaction is safe because the saturation test
		// reads rem, not cnt.
		out := unfrozen[:0]
		for _, f := range unfrozen {
			saturated := false
			for _, l := range links[f] {
				if rem[l] <= relEps*caps[l] {
					saturated = true
					break
				}
			}
			if !saturated {
				out = append(out, f)
				continue
			}
			for _, l := range links[f] {
				cnt[l]--
			}
		}
		unfrozen = out
	}
}

// fairShare is the scratch-free entry point tests and the fuzz target
// exercise; the engine holds its own fairScratch instead.
func fairShare(caps []float64, links [][]int32, rates []float64) {
	(&fairScratch{}).run(caps, links, rates)
}
