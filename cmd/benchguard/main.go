// Command benchguard compares a fresh `sdtbench -json` report against
// the committed perf-trajectory baseline (BENCH_<pr>.json) and fails
// if the headline experiment's wall clock regressed beyond tolerance —
// the enforcement half of the BENCH_*.json trajectory: committing a
// baseline is only useful if CI refuses changes that quietly walk it
// back.
//
// Usage:
//
//	sdtbench -exp fig12 -json > current.json
//	benchguard -baseline BENCH_6.json -current current.json
//
// Only experiments present in BOTH reports are compared; the headline
// (-headline, default fig12) must be among them. Wall-clock checks are
// regression-only: a faster machine passes, a >tolerance slowdown
// fails.
//
// -min-speedup additionally gates the shard-scale metrics: when the
// current report was produced on a host with at least 4 CPUs
// (gomaxprocs >= 4), shard_scale_speedup_k4 must meet the floor.
// Single-core hosts skip the gate — conservative-window parallelism
// cannot manifest without cores to run on — but still record the
// measured value in the trajectory.
//
// -min-flowsim-speedup gates loadgen-sweep-xl's flowsim_speedup metric
// (flow-fidelity vs packet-fidelity wall clock on a common fabric)
// whenever the current report carries it. That comparison is serial on
// both sides, so it applies at any CPU count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the subset of sdtbench's -json document benchguard
// reads.
type report struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	Results    []struct {
		Experiment string             `json:"experiment"`
		WallMs     float64            `json:"wall_ms"`
		Metrics    map[string]float64 `json:"metrics"`
	} `json:"results"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func (r *report) wall(name string) (float64, bool) {
	for _, res := range r.Results {
		if res.Experiment == name {
			return res.WallMs, true
		}
	}
	return 0, false
}

func (r *report) metric(name string) (float64, bool) {
	for _, res := range r.Results {
		if v, ok := res.Metrics[name]; ok {
			return v, true
		}
	}
	return 0, false
}

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_<pr>.json baseline")
	currentPath := flag.String("current", "", "fresh sdtbench -json report")
	headline := flag.String("headline", "fig12", "experiment whose wall clock is gated")
	tolerance := flag.Float64("tolerance", 0.20, "allowed relative wall-clock regression")
	minSpeedup := flag.Float64("min-speedup", 2.5, "shard_scale_speedup_k4 floor on hosts with >= 4 CPUs (0 disables)")
	minFlowSpeedup := flag.Float64("min-flowsim-speedup", 1.0, "flowsim_speedup floor: flow fidelity must beat packet wall clock (0 disables)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline and -current are required")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}

	failed := false
	bw, ok := base.wall(*headline)
	if !ok {
		fatal(fmt.Errorf("baseline has no %q entry", *headline))
	}
	cw, ok := cur.wall(*headline)
	if !ok {
		fatal(fmt.Errorf("current report has no %q entry", *headline))
	}
	limit := bw * (1 + *tolerance)
	if cw > limit {
		fmt.Printf("FAIL %s wall: %.1f ms vs baseline %.1f ms (limit %.1f ms, +%.0f%%)\n",
			*headline, cw, bw, limit, *tolerance*100)
		failed = true
	} else {
		fmt.Printf("ok   %s wall: %.1f ms vs baseline %.1f ms (limit %.1f ms)\n",
			*headline, cw, bw, limit)
	}

	if *minSpeedup > 0 {
		if v, ok := cur.metric("shard_scale_speedup_k4"); ok {
			if cur.GOMAXPROCS >= 4 {
				if v < *minSpeedup {
					fmt.Printf("FAIL shard_scale_speedup_k4: %.2fx < %.2fx floor (%d CPUs)\n",
						v, *minSpeedup, cur.GOMAXPROCS)
					failed = true
				} else {
					fmt.Printf("ok   shard_scale_speedup_k4: %.2fx (floor %.2fx, %d CPUs)\n",
						v, *minSpeedup, cur.GOMAXPROCS)
				}
			} else {
				fmt.Printf("skip shard_scale_speedup_k4 gate: %d CPU(s), measured %.2fx\n",
					cur.GOMAXPROCS, v)
			}
		}
	}

	// The flowsim gate is serial (one engine, one core), so unlike the
	// shard gate it applies regardless of CPU count: flow fidelity
	// exists to be faster than packet fidelity, and a report that
	// carries the metric but misses the floor is a regression.
	if *minFlowSpeedup > 0 {
		if v, ok := cur.metric("flowsim_speedup"); ok {
			if v < *minFlowSpeedup {
				fmt.Printf("FAIL flowsim_speedup: %.2fx < %.2fx floor\n", v, *minFlowSpeedup)
				failed = true
			} else {
				fmt.Printf("ok   flowsim_speedup: %.2fx (floor %.2fx)\n", v, *minFlowSpeedup)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
