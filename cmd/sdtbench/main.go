// Command sdtbench regenerates the paper's tables and figures
// (EXPERIMENTS.md records the outputs).
//
// Usage:
//
//	sdtbench -exp all
//	sdtbench -exp fig11 -parallel 0
//	sdtbench -exp table4 -ranks 16
//	sdtbench -exp fig13 -bytes 524288 -reps 8
//	sdtbench -exp all -json > bench.json
//
// -parallel N runs sweep experiments one independent simulation per
// worker (0 = all cores). Simulated results are identical at any
// worker count; only the wall-clock columns of fig13/table4 (the
// simulator's own evaluation time) should be read from serial runs.
//
// -json suppresses the human-readable tables and instead emits one
// machine-readable JSON document with per-experiment wall-clock and
// allocation figures — the format the BENCH_*.json perf trajectory
// tracks across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
)

// expResult is one experiment's perf record in -json mode.
type expResult struct {
	Experiment string  `json:"experiment"`
	WallMs     float64 `json:"wall_ms"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
}

// benchReport is the top-level -json document.
type benchReport struct {
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Parallel   int         `json:"parallel"`
	Results    []expResult `json:"results"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig11|fig12|table2|table3|table4|fig13|isolation|active|tables|all")
	ranks := flag.Int("ranks", 16, "MPI ranks for table4")
	reps := flag.Int("reps", 8, "repetitions (fig11 pingpongs / fig13 alltoall rounds)")
	bytes := flag.Int("bytes", 256*1024, "message bytes for fig13 / active routing")
	zoo := flag.Int("zoo", 0, "zoo subset size for table2 (0 = all 261)")
	durMs := flag.Int("dur", 1000, "fig12 window in simulated ms")
	parallel := flag.Int("parallel", 1, "workers for sweep experiments (0 = all cores, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit per-experiment timing/alloc results as JSON instead of tables")
	flag.Parse()

	run := map[string]func(w io.Writer) error{
		"table1": func(w io.Writer) error {
			experiments.Table1().Format(w)
			return nil
		},
		"fig11": func(w io.Writer) error {
			r, err := experiments.Fig11Par(*reps*5, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"fig12": func(w io.Writer) error {
			dur := netsim.Time(*durMs) * netsim.Millisecond
			rs, err := experiments.Fig12Panels(dur, *parallel)
			if err != nil {
				return err
			}
			for _, r := range rs {
				r.Format(w)
			}
			return nil
		},
		"table2": func(w io.Writer) error {
			r, err := experiments.Table2Par(*zoo, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"table3": func(w io.Writer) error {
			r, err := experiments.Table3()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"table4": func(w io.Writer) error {
			r, err := experiments.Table4Par(*ranks, nil, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"fig13": func(w io.Writer) error {
			r, err := experiments.Fig13Par(nil, *bytes, *reps, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"isolation": func(w io.Writer) error {
			r, err := experiments.Isolation()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"active": func(w io.Writer) error {
			r, err := experiments.ActiveRouting(8, *bytes)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"tables": func(w io.Writer) error {
			r, err := experiments.FlowTableUsage()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
	}

	order := []string{"table1", "fig11", "fig12", "table2", "table3", "table4", "fig13", "isolation", "active", "tables"}
	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		if _, ok := run[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "sdtbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		selected = []string{*exp}
	}

	if *jsonOut {
		report := benchReport{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Parallel:   *parallel,
		}
		for _, name := range selected {
			res, err := measure(name, run[name])
			if err != nil {
				fatal(name, err)
			}
			report.Results = append(report.Results, res)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal("json", err)
		}
		return
	}

	for _, name := range selected {
		if err := run[name](os.Stdout); err != nil {
			fatal(name, err)
		}
	}
}

// measure runs one experiment with its table output discarded and
// returns its wall-clock and allocation figures. Allocation counts are
// process-wide deltas (runtime.MemStats), so run experiments serially
// — as this loop does — for attributable numbers.
func measure(name string, fn func(w io.Writer) error) (expResult, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := fn(io.Discard); err != nil {
		return expResult{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return expResult{
		Experiment: name,
		WallMs:     float64(wall.Microseconds()) / 1000,
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}, nil
}

func fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "sdtbench: %s: %v\n", name, err)
	os.Exit(1)
}
