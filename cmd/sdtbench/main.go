// Command sdtbench regenerates the paper's tables and figures
// (EXPERIMENTS.md records the outputs). The experiments come from the
// scenario registry (internal/experiments Register/Lookup), so the CLI
// is a thin shell: flags become experiments.Params, names resolve
// through the registry, and Ctrl-C cancels in-flight simulations
// mid-run via context cancellation threaded into the engine loop.
//
// Usage:
//
//	sdtbench -list
//	sdtbench -list -json
//	sdtbench -exp all
//	sdtbench -exp fig11 -parallel 0
//	sdtbench -exp table4 -ranks 16
//	sdtbench -exp fig13 -bytes 524288 -reps 8
//	sdtbench -exp loadgen-sweep -seed 7 -parallel 0
//	sdtbench -exp loadgen-sweep -shards 4
//	sdtbench -exp shard-scale
//	sdtbench -exp reconfig-sweep
//	sdtbench -exp reconfig-under-load -reconfig torus
//	sdtbench -exp cc-shootout -cc timely
//	sdtbench -exp all -json > bench.json
//
// -list prints every registered scenario set with its one-line
// description (the registry is the source of truth — see WORKLOADS.md
// for the workload catalogue behind them). With -json it emits the
// machine-readable registry instead — names, descriptions, and each
// set's param schema — the same document sdtd serves at /v1/scenarios.
//
// -parallel N runs sweep experiments one independent simulation per
// worker (0 = all cores). Simulated results are identical at any
// worker count; only the wall-clock columns of fig13/table4 (the
// simulator's own evaluation time) should be read from serial runs.
//
// -shards K splits each simulation across K conservative shard engines
// (core.WithShards): deterministic per shard count, serial fallback
// for runs the executor cannot shard (faults, reconfiguration,
// SDT-mode jobs, hand-driven sets). Composes with -parallel.
//
// -reconfig selects reconfig-under-load's transition target topology:
// dragonfly (the default) or torus. reconfig-sweep ignores it — its
// grid fixes the transition pairs.
//
// -cc restricts cc-shootout to one congestion-control policy (dcqcn,
// timely, or pfabric); empty races all three.
//
// -json suppresses the human-readable tables and instead emits one
// machine-readable JSON document with per-experiment wall-clock and
// allocation figures — the format the BENCH_*.json perf trajectory
// tracks across PRs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/netsim"
)

// expResult is one experiment's perf record in -json mode.
type expResult struct {
	Experiment string  `json:"experiment"`
	WallMs     float64 `json:"wall_ms"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
	// Metrics carries named scalars the experiment recorded itself
	// (experiments.RecordMetric) — e.g. shard-scale's speedup factors.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchReport is the top-level -json document.
type benchReport struct {
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Parallel   int         `json:"parallel"`
	Results    []expResult `json:"results"`
}

func main() {
	names := experiments.Names()
	exp := flag.String("exp", "all", "experiment (comma-separated): "+strings.Join(names, "|")+"|all")
	ranks := flag.Int("ranks", 16, "MPI ranks for table4")
	reps := flag.Int("reps", 8, "repetitions (fig11 pingpongs / fig13 alltoall rounds)")
	bytes := flag.Int("bytes", 256*1024, "message bytes for fig13 / active routing")
	zoo := flag.Int("zoo", 0, "zoo subset size for table2 (0 = all 261)")
	durMs := flag.Int("dur", 1000, "fig12 window in simulated ms")
	parallel := flag.Int("parallel", 1, "workers for sweep experiments (0 = all cores, 1 = serial)")
	seed := flag.Int64("seed", 1, "loadgen schedule seed (equal seeds rerun byte-identical)")
	flows := flag.Int("flows", 0, "loadgen flows per grid cell (0 = experiment default)")
	load := flag.Float64("load", 0, "loadgen-incast victim load factor (0 = 0.8)")
	shards := flag.Int("shards", 0, "intra-run shard engines per simulation (0/1 = serial; ineligible runs fall back)")
	nFaults := flag.Int("faults", 0, "faults-sweep link-failure count per cell (0 = the {1,2,4} grid)")
	mtbf := flag.Float64("mtbf", 0, "faults-flap link MTBF in ms, MTTR = MTBF/4 (0 = the {1,2,4,8} ms grid)")
	reconfigTarget := flag.String("reconfig", "", "reconfig-under-load transition target: dragonfly|torus (\"\" = dragonfly)")
	cc := flag.String("cc", "", "cc-shootout congestion-control policy: "+strings.Join(netsim.CCPolicies(), "|")+" (\"\" = all)")
	jsonOut := flag.Bool("json", false, "emit per-experiment timing/alloc results as JSON instead of tables")
	list := flag.Bool("list", false, "list registered experiments with their descriptions and exit")
	flag.Parse()

	if *list {
		if *jsonOut {
			// Machine-readable listing: names, descriptions, and the
			// registered param schemas (the same document the daemon's
			// /v1/scenarios serves).
			type listEntry struct {
				Name   string              `json:"name"`
				Desc   string              `json:"desc"`
				Params []experiments.Field `json:"params,omitempty"`
			}
			var out []listEntry
			for _, e := range experiments.All() {
				out = append(out, listEntry{Name: e.Name, Desc: e.Desc, Params: e.Schema})
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				fatal("json", err)
			}
			return
		}
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.Name, e.Desc)
		}
		return
	}

	params := experiments.Params{
		Ranks:    *ranks,
		Reps:     *reps,
		Bytes:    *bytes,
		Zoo:      *zoo,
		Duration: netsim.Time(*durMs) * netsim.Millisecond,
		Workers:  *parallel,
		Seed:     *seed,
		Flows:    *flows,
		Load:     *load,
		Shards:   *shards,
		Faults:   *nFaults,
		MTBF:     netsim.Time(*mtbf * float64(netsim.Millisecond)),
		Reconfig: *reconfigTarget,
		CC:       *cc,
	}

	// -exp takes a comma-separated list: fig12,shard-scale runs both;
	// "all" expands to every set. Unknown names list the valid ones.
	selected, err := experiments.Select(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdtbench: %v\n", err)
		os.Exit(2)
	}

	// Ctrl-C (or SIGTERM) cancels the in-flight simulation mid-run (the
	// engine polls the stop flag every StopStride events), not just
	// between runs — the same shutdown path sdtd's drain uses.
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	if *jsonOut {
		report := benchReport{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Parallel:   *parallel,
		}
		for _, e := range selected {
			res, err := measure(ctx, e, params)
			if err != nil {
				fatal(e.Name, err)
			}
			report.Results = append(report.Results, res)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal("json", err)
		}
		return
	}

	for _, e := range selected {
		if err := e.Run(ctx, params, os.Stdout); err != nil {
			fatal(e.Name, err)
		}
	}
}

// measure runs one experiment with its table output discarded and
// returns its wall-clock and allocation figures. Allocation counts are
// process-wide deltas (runtime.MemStats), so run experiments serially
// — as this loop does — for attributable numbers.
func measure(ctx context.Context, e experiments.Entry, p experiments.Params) (expResult, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := e.Run(ctx, p, io.Discard); err != nil {
		return expResult{}, err
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	res := expResult{
		Experiment: e.Name,
		WallMs:     float64(wall.Microseconds()) / 1000,
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
	if m := experiments.TakeMetrics(); len(m) > 0 {
		res.Metrics = m
	}
	return res, nil
}

func fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "sdtbench: %s: %v\n", name, err)
	os.Exit(cli.ExitCode(err))
}
