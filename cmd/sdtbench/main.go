// Command sdtbench regenerates the paper's tables and figures
// (EXPERIMENTS.md records the outputs).
//
// Usage:
//
//	sdtbench -exp all
//	sdtbench -exp fig11 -parallel 0
//	sdtbench -exp table4 -ranks 16
//	sdtbench -exp fig13 -bytes 524288 -reps 8
//
// -parallel N runs sweep experiments one independent simulation per
// worker (0 = all cores). Simulated results are identical at any
// worker count; only the wall-clock columns of fig13/table4 (the
// simulator's own evaluation time) should be read from serial runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/netsim"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig11|fig12|table2|table3|table4|fig13|isolation|active|tables|all")
	ranks := flag.Int("ranks", 16, "MPI ranks for table4")
	reps := flag.Int("reps", 8, "repetitions (fig11 pingpongs / fig13 alltoall rounds)")
	bytes := flag.Int("bytes", 256*1024, "message bytes for fig13 / active routing")
	zoo := flag.Int("zoo", 0, "zoo subset size for table2 (0 = all 261)")
	durMs := flag.Int("dur", 1000, "fig12 window in simulated ms")
	parallel := flag.Int("parallel", 1, "workers for sweep experiments (0 = all cores, 1 = serial)")
	flag.Parse()
	w := os.Stdout

	run := map[string]func() error{
		"table1": func() error {
			experiments.Table1().Format(w)
			return nil
		},
		"fig11": func() error {
			r, err := experiments.Fig11Par(*reps*5, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"fig12": func() error {
			dur := netsim.Time(*durMs) * netsim.Millisecond
			rs, err := experiments.Fig12Panels(dur, *parallel)
			if err != nil {
				return err
			}
			for _, r := range rs {
				r.Format(w)
			}
			return nil
		},
		"table2": func() error {
			r, err := experiments.Table2Par(*zoo, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"table3": func() error {
			r, err := experiments.Table3()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"table4": func() error {
			r, err := experiments.Table4Par(*ranks, nil, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"fig13": func() error {
			r, err := experiments.Fig13Par(nil, *bytes, *reps, *parallel)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"isolation": func() error {
			r, err := experiments.Isolation()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"active": func() error {
			r, err := experiments.ActiveRouting(8, *bytes)
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
		"tables": func() error {
			r, err := experiments.FlowTableUsage()
			if err != nil {
				return err
			}
			r.Format(w)
			return nil
		},
	}

	order := []string{"table1", "fig11", "fig12", "table2", "table3", "table4", "fig13", "isolation", "active", "tables"}
	if *exp == "all" {
		for _, name := range order {
			if err := run[name](); err != nil {
				fatal(name, err)
			}
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "sdtbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := fn(); err != nil {
		fatal(*exp, err)
	}
}

func fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "sdtbench: %s: %v\n", name, err)
	os.Exit(1)
}
