package main

// The service-cache scenario set is implemented by internal/service
// (service.CacheBench) but registered here: the service package
// imports internal/experiments for the registry and job specs, so
// registering from inside the registry's own package tree would cycle.
// sdtbench sits above both, which makes it the natural wiring point —
// and puts the daemon's cache trajectory into `sdtbench -exp all
// -json` alongside every other experiment.

import (
	"repro/internal/experiments"
	"repro/internal/service"
)

func init() {
	experiments.Register(170, "service-cache",
		"sdtd service: content-addressed result cache, cold run vs cache hit over loopback HTTP",
		service.CacheBench, service.CacheBenchSchema...)
}
