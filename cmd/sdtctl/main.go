// Command sdtctl is the SDT controller CLI: it checks topology
// configuration files against a testbed, deploys them (printing the
// synthesised flow tables), and demonstrates reconfiguration — all of
// §V driven from the command line.
//
// Usage:
//
//	sdtctl -check  fattree-k4.json
//	sdtctl -deploy fattree-k4.json -dump
//	sdtctl -reconfigure fattree-k4.json,torus.json
//	sdtctl -switches 3 -ports 88
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/controller"
	"repro/internal/projection"
	"repro/internal/topology"
)

func main() {
	check := flag.String("check", "", "topology config to check against the testbed")
	deploy := flag.String("deploy", "", "comma-separated topology configs to deploy together")
	reconf := flag.String("reconfigure", "", "comma-separated topology configs to deploy in sequence, reconfiguring between them")
	nSwitches := flag.Int("switches", 3, "physical switch count")
	ports := flag.Int("ports", 88, "ports per physical switch")
	tableCap := flag.Int("tablecap", 16384, "flow-table capacity per switch")
	dump := flag.Bool("dump", false, "dump flow tables after deployment")
	lossless := flag.Bool("lossless", true, "require deadlock-free routes (PFC operation)")
	flag.Parse()

	load := func(paths string) []*topology.Graph {
		var out []*topology.Graph
		for _, p := range strings.Split(paths, ",") {
			g, err := topology.LoadConfig(strings.TrimSpace(p))
			if err != nil {
				fatal(err)
			}
			out = append(out, g)
		}
		return out
	}

	var specs []projection.PhysicalSwitch
	for i := 0; i < *nSwitches; i++ {
		specs = append(specs, projection.PhysicalSwitch{
			ID: fmt.Sprintf("sw%d", i), Ports: *ports, TableCap: *tableCap,
		})
	}

	switch {
	case *check != "":
		topos := load(*check)
		ctl, err := controller.NewFromTopologies(specs, topos)
		if err != nil {
			fatal(err)
		}
		for _, g := range topos {
			if err := ctl.Check(g); err != nil {
				fatal(err)
			}
			fmt.Printf("%s: OK — fits the testbed (%d switches x %d ports)\n", g.Name, *nSwitches, *ports)
		}

	case *deploy != "":
		topos := load(*deploy)
		ctl, err := controller.NewFromTopologies(specs, topos)
		if err != nil {
			fatal(err)
		}
		for _, g := range topos {
			d, err := ctl.Deploy(g, controller.Options{RequireDeadlockFree: *lossless})
			if err != nil {
				fatal(err)
			}
			st := d.Plan.Stats()
			fmt.Printf("deployed %s: %d physical switches, %d self-links, %d inter-switch links, %d hosts, %d flow entries, reconfig time %v\n",
				d.Name, st.PhysicalSwitches, st.SelfLinks, st.InterLinks, st.Hosts, d.Entries, d.DeployTime)
		}
		if *dump {
			for _, sw := range ctl.Physical {
				if sw.Table.Len() > 0 {
					fmt.Print(sw.Dump())
				}
			}
		}

	case *reconf != "":
		topos := load(*reconf)
		if len(topos) < 2 {
			fatal(fmt.Errorf("-reconfigure needs at least two configs"))
		}
		ctl, err := controller.NewFromTopologies(specs, topos)
		if err != nil {
			fatal(err)
		}
		prev, err := ctl.Deploy(topos[0], controller.Options{RequireDeadlockFree: *lossless})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("deployed %s (%d entries, %v)\n", prev.Name, prev.Entries, prev.DeployTime)
		for _, g := range topos[1:] {
			d, err := ctl.Reconfigure(prev.Name, g, controller.Options{RequireDeadlockFree: *lossless})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("reconfigured -> %s (%d entries, %v) — no cables touched\n", d.Name, d.Entries, d.DeployTime)
			prev = d
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sdtctl: %v\n", err)
	os.Exit(1)
}
