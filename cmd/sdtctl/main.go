// Command sdtctl is the SDT controller CLI: it checks topology
// configuration files against a testbed, deploys them (printing the
// synthesised flow tables), and demonstrates reconfiguration — all of
// §V driven from the command line.
//
// Usage:
//
//	sdtctl -check  fattree-k4.json
//	sdtctl -deploy fattree-k4.json -dump
//	sdtctl -reconfigure fattree-k4.json,torus.json
//	sdtctl -switches 3 -ports 88
//	sdtctl -check fattree-k4.json,torus.json -json
//
// Every topology of a -check run is checked (a failing one does not
// mask the rest); any check, deploy, or reconfigure failure exits
// non-zero. -json replaces the human-readable lines with one
// machine-readable JSON document (mirroring sdtbench -json).
//
// With -daemon ADDR, sdtctl is instead a client of a running sdtd
// simulation service — submit/status/result/cancel/scenarios/stats
// (see daemon.go for the action flags):
//
//	sdtctl -daemon :7390 -submit loadgen-sweep -spec '{"seed":7}' -wait
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/controller"
	"repro/internal/projection"
	"repro/internal/topology"
)

// ctlResult is one topology's outcome in the report.
type ctlResult struct {
	Action   string `json:"action"`
	Topology string `json:"topology"`
	OK       bool   `json:"ok"`
	Error    string `json:"error,omitempty"`
	// Deployment stats (deploy/reconfigure only).
	PhysicalSwitches int     `json:"physical_switches,omitempty"`
	SelfLinks        int     `json:"self_links,omitempty"`
	InterLinks       int     `json:"inter_links,omitempty"`
	Hosts            int     `json:"hosts,omitempty"`
	Entries          int     `json:"entries,omitempty"`
	DeployMs         float64 `json:"deploy_ms,omitempty"`
}

// ctlReport is the top-level -json document.
type ctlReport struct {
	Switches int         `json:"switches"`
	Ports    int         `json:"ports"`
	Results  []ctlResult `json:"results"`
	OK       bool        `json:"ok"`
}

func main() {
	os.Exit(run())
}

func run() int {
	check := flag.String("check", "", "topology config to check against the testbed")
	deploy := flag.String("deploy", "", "comma-separated topology configs to deploy together")
	reconf := flag.String("reconfigure", "", "comma-separated topology configs to deploy in sequence, reconfiguring between them")
	nSwitches := flag.Int("switches", 3, "physical switch count")
	ports := flag.Int("ports", 88, "ports per physical switch")
	tableCap := flag.Int("tablecap", 16384, "flow-table capacity per switch")
	dump := flag.Bool("dump", false, "dump flow tables after deployment")
	lossless := flag.Bool("lossless", true, "require deadlock-free routes (PFC operation)")
	jsonOut := flag.Bool("json", false, "emit results as one JSON document instead of lines")
	flag.Parse()

	if *daemonAddr != "" {
		return daemonMain(*jsonOut)
	}

	report := ctlReport{Switches: *nSwitches, Ports: *ports, OK: true}
	say := func(format string, args ...any) {
		if !*jsonOut {
			fmt.Printf(format, args...)
		}
	}
	record := func(r ctlResult) {
		if !r.OK {
			report.OK = false
			fmt.Fprintf(os.Stderr, "sdtctl: %s %s: %s\n", r.Action, r.Topology, r.Error)
		}
		report.Results = append(report.Results, r)
	}
	fail := func(action, topo string, err error) {
		record(ctlResult{Action: action, Topology: topo, OK: false, Error: err.Error()})
	}

	load := func(paths string) ([]*topology.Graph, bool) {
		var out []*topology.Graph
		ok := true
		for _, p := range strings.Split(paths, ",") {
			p = strings.TrimSpace(p)
			g, err := topology.LoadConfig(p)
			if err != nil {
				fail("load", p, err)
				ok = false
				continue
			}
			out = append(out, g)
		}
		return out, ok
	}

	var specs []projection.PhysicalSwitch
	for i := 0; i < *nSwitches; i++ {
		specs = append(specs, projection.PhysicalSwitch{
			ID: fmt.Sprintf("sw%d", i), Ports: *ports, TableCap: *tableCap,
		})
	}

	depResult := func(action string, d *controller.Deployment) ctlResult {
		st := d.Plan.Stats()
		return ctlResult{
			Action: action, Topology: d.Name, OK: true,
			PhysicalSwitches: st.PhysicalSwitches, SelfLinks: st.SelfLinks,
			InterLinks: st.InterLinks, Hosts: st.Hosts, Entries: d.Entries,
			DeployMs: float64(d.DeployTime) / float64(time.Millisecond),
		}
	}

	switch {
	case *check != "":
		topos, _ := load(*check)
		// Check every topology individually so one failure does not mask
		// the rest (a joint cabling plan fails as a block)...
		for _, g := range topos {
			ctl, err := controller.NewFromTopologies(specs, []*topology.Graph{g})
			if err == nil {
				err = ctl.Check(g)
			}
			if err != nil {
				fail("check", g.Name, err)
				continue
			}
			record(ctlResult{Action: "check", Topology: g.Name, OK: true})
			say("%s: OK — fits the testbed (%d switches x %d ports)\n", g.Name, *nSwitches, *ports)
		}
		// ...then verify the whole set can be cabled together — the real
		// preflight for a joint -deploy, which plans all configs at once.
		if len(topos) > 1 {
			var names []string
			for _, g := range topos {
				names = append(names, g.Name)
			}
			set := strings.Join(names, "+")
			if _, err := controller.NewFromTopologies(specs, topos); err != nil {
				fail("check-set", set, err)
			} else {
				record(ctlResult{Action: "check-set", Topology: set, OK: true})
				say("set: OK — all %d topologies fit the testbed together\n", len(topos))
			}
		}

	case *deploy != "":
		topos, ok := load(*deploy)
		if !ok {
			break
		}
		ctl, err := controller.NewFromTopologies(specs, topos)
		if err != nil {
			fail("plan", *deploy, err)
			break
		}
		for _, g := range topos {
			d, err := ctl.Deploy(g, controller.Options{RequireDeadlockFree: *lossless})
			if err != nil {
				fail("deploy", g.Name, err)
				continue
			}
			record(depResult("deploy", d))
			st := d.Plan.Stats()
			say("deployed %s: %d physical switches, %d self-links, %d inter-switch links, %d hosts, %d flow entries, reconfig time %v\n",
				d.Name, st.PhysicalSwitches, st.SelfLinks, st.InterLinks, st.Hosts, d.Entries, d.DeployTime)
		}
		if *dump && !*jsonOut {
			for _, sw := range ctl.Physical {
				if sw.Table.Len() > 0 {
					fmt.Print(sw.Dump())
				}
			}
		}

	case *reconf != "":
		topos, ok := load(*reconf)
		if !ok {
			break
		}
		if len(topos) < 2 {
			fail("reconfigure", *reconf, fmt.Errorf("-reconfigure needs at least two configs"))
			break
		}
		ctl, err := controller.NewFromTopologies(specs, topos)
		if err != nil {
			fail("plan", *reconf, err)
			break
		}
		prev, err := ctl.Deploy(topos[0], controller.Options{RequireDeadlockFree: *lossless})
		if err != nil {
			fail("deploy", topos[0].Name, err)
			break
		}
		record(depResult("deploy", prev))
		say("deployed %s (%d entries, %v)\n", prev.Name, prev.Entries, prev.DeployTime)
		for _, g := range topos[1:] {
			d, err := ctl.Reconfigure(prev.Name, g, controller.Options{RequireDeadlockFree: *lossless})
			if err != nil {
				fail("reconfigure", g.Name, err)
				break
			}
			record(depResult("reconfigure", d))
			say("reconfigured -> %s (%d entries, %v) — no cables touched\n", d.Name, d.Entries, d.DeployTime)
			prev = d
		}

	default:
		flag.Usage()
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "sdtctl: json: %v\n", err)
			return 1
		}
	}
	if !report.OK {
		return 1
	}
	return 0
}
