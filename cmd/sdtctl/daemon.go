package main

// The daemon client mode: -daemon ADDR turns sdtctl into a client of a
// running sdtd, with one action flag per API call. Spec params ride in
// -spec as the same JSON document the POST /v1/jobs body uses (the
// scenario name comes from -submit).
//
//	sdtctl -daemon :7390 -scenarios
//	sdtctl -daemon :7390 -submit loadgen-sweep -spec '{"seed":7,"flows":48}'
//	sdtctl -daemon :7390 -submit fig12 -wait          # block, print result
//	sdtctl -daemon :7390 -status j0001-ab12cd34
//	sdtctl -daemon :7390 -result j0001-ab12cd34
//	sdtctl -daemon :7390 -cancel j0001-ab12cd34
//	sdtctl -daemon :7390 -stats -json

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/service"
)

var (
	daemonAddr = flag.String("daemon", "", "sdtd address (host:port or URL); enables the daemon client actions below")
	submitName = flag.String("submit", "", "daemon: submit a job for this scenario set (params via -spec)")
	specJSON   = flag.String("spec", "", `daemon: job spec params as JSON, e.g. '{"seed":7,"flows":48}'`)
	waitDone   = flag.Bool("wait", false, "daemon: after -submit, wait for the job and print its result")
	statusID   = flag.String("status", "", "daemon: print a job's status snapshot")
	resultID   = flag.String("result", "", "daemon: print a job's result body")
	cancelID   = flag.String("cancel", "", "daemon: cancel a job")
	scenarios  = flag.Bool("scenarios", false, "daemon: list the registry with param schemas")
	statsFlag  = flag.Bool("stats", false, "daemon: print /v1/statsz")
)

// daemonMain dispatches one daemon action. jsonOut mirrors the global
// -json flag: statuses and listings print as JSON documents instead of
// lines (result bodies are always raw).
func daemonMain(jsonOut bool) int {
	c := service.NewClient(*daemonAddr)
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	err := runDaemonAction(ctx, c, jsonOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdtctl: %v\n", err)
	}
	return cli.ExitCode(err)
}

func runDaemonAction(ctx context.Context, c *service.Client, jsonOut bool) error {
	emit := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	sayStatus := func(st service.JobStatus) error {
		if jsonOut {
			return emit(st)
		}
		fmt.Printf("%s  %s", st.ID, st.State)
		if st.Cached {
			fmt.Print("  (cache hit)")
		}
		if st.Dedup {
			fmt.Print("  (deduped onto in-flight job)")
		}
		if st.WallMs > 0 {
			fmt.Printf("  wall %.1fms", st.WallMs)
		}
		if st.ResultBytes > 0 {
			fmt.Printf("  %dB", st.ResultBytes)
		} else if st.BytesWritten > 0 {
			fmt.Printf("  %dB so far", st.BytesWritten)
		}
		if st.Error != "" {
			fmt.Printf("  error: %s", st.Error)
		}
		fmt.Println()
		return nil
	}

	switch {
	case *submitName != "":
		spec := service.JobSpec{}
		if *specJSON != "" {
			dec := json.NewDecoder(strings.NewReader(*specJSON))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&spec); err != nil {
				return fmt.Errorf("-spec: %w", err)
			}
		}
		spec.Scenario = *submitName
		st, err := c.Submit(ctx, spec)
		if err != nil {
			return err
		}
		if !*waitDone || st.State.Terminal() {
			if err := sayStatus(st); err != nil {
				return err
			}
			if !*waitDone {
				return nil
			}
		} else if st, err = c.Wait(ctx, st.ID, 100*time.Millisecond); err != nil {
			return err
		}
		body, _, err := c.Result(ctx, st.ID)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(body)
		return err

	case *statusID != "":
		st, err := c.Job(ctx, *statusID)
		if err != nil {
			return err
		}
		return sayStatus(st)

	case *resultID != "":
		body, st, err := c.Result(ctx, *resultID)
		if err != nil {
			return err
		}
		if body == nil {
			return fmt.Errorf("job %s is still %s — poll again or use -submit -wait", st.ID, st.State)
		}
		_, err = os.Stdout.Write(body)
		return err

	case *cancelID != "":
		st, err := c.Cancel(ctx, *cancelID)
		if err != nil {
			return err
		}
		return sayStatus(st)

	case *scenarios:
		scens, err := c.Scenarios(ctx)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(scens)
		}
		for _, s := range scens {
			fmt.Printf("%-20s %s\n", s.Name, s.Desc)
			for _, p := range s.Params {
				fmt.Printf("    %-10s %-8s default %-8s %s\n", p.Name, p.Type, p.Default, p.Desc)
			}
		}
		return nil

	case *statsFlag:
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		if jsonOut {
			return emit(st)
		}
		fmt.Printf("uptime %.0fs  workers %d  queue %d/%d  running %d\n",
			st.UptimeSec, st.Workers, st.QueueDepth, st.QueueCap, st.Running)
		fmt.Printf("cache: %d hits (%d disk), %d misses, %d evictions, %d entries, %d/%d bytes\n",
			st.Cache.Hits, st.Cache.DiskHits, st.Cache.Misses, st.Cache.Evictions,
			st.Cache.Entries, st.Cache.Bytes, st.Cache.Budget)
		fmt.Printf("jobs: submitted %d, deduped %d, rejected %d\n", st.Submitted, st.Deduped, st.Rejected)
		for name, n := range st.RunsByScenario {
			fmt.Printf("  runs %-20s %d\n", name, n)
		}
		return nil

	default:
		return fmt.Errorf("-daemon needs an action: -submit, -status, -result, -cancel, -scenarios, or -stats")
	}
}
