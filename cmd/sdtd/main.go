// Command sdtd is the long-running simulation service: the scenario
// registry exposed over HTTP/JSON with a content-addressed result
// cache and a bounded job scheduler (internal/service). Start it once,
// then submit jobs with sdtctl -daemon or any HTTP client — identical
// specs are served from the cache instead of re-simulated, and
// identical in-flight specs share one execution.
//
// Usage:
//
//	sdtd                                  # listen on :7390, all cores
//	sdtd -addr 127.0.0.1:8080 -workers 4
//	sdtd -cache-mb 256 -cache-dir /var/cache/sdtd
//	sdtd -queue 128 -grace 30s
//
// API (see internal/service for the wire types):
//
//	POST   /v1/jobs              submit a job spec
//	GET    /v1/jobs/{id}         status + telemetry snapshot
//	GET    /v1/jobs/{id}/result  result body
//	DELETE /v1/jobs/{id}         cancel
//	GET    /v1/scenarios         registry + param schemas
//	GET    /v1/healthz           liveness
//	GET    /v1/statsz            cache/queue/run counters
//
// On SIGTERM or SIGINT the daemon stops accepting jobs, cancels the
// queued backlog, and waits up to -grace for running simulations; when
// the grace expires the survivors are cancelled engine-deep (they stop
// within one event stride). A clean drain exits 0, a forced one 130.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":7390", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = all cores)")
	queue := flag.Int("queue", 64, "admission queue capacity (full queue rejects with 429)")
	cacheMB := flag.Int("cache-mb", 64, "in-memory result cache budget in MiB")
	cacheDir := flag.String("cache-dir", "", "on-disk result store (empty = memory only; survives restarts)")
	grace := flag.Duration("grace", 30*time.Second, "drain grace for running jobs on shutdown")
	flag.Parse()

	srv, err := service.New(service.Config{
		Workers:    *workers,
		QueueCap:   *queue,
		CacheBytes: int64(*cacheMB) << 20,
		CacheDir:   *cacheDir,
	})
	if err != nil {
		log.Printf("sdtd: %v", err)
		return 1
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("sdtd: listening on %s (workers=%d queue=%d cache=%dMiB dir=%q)",
		*addr, srv.Stats().Workers, *queue, *cacheMB, *cacheDir)

	select {
	case err := <-errc:
		log.Printf("sdtd: serve: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Shutdown: stop the listener first so no submission can slip in
	// behind the drain, then drain the scheduler under the grace.
	log.Printf("sdtd: signal received, draining (grace %v)", *grace)
	hctx, hcancel := context.WithTimeout(context.Background(), *grace)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil {
		log.Printf("sdtd: http shutdown: %v", err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), *grace)
	defer dcancel()
	derr := srv.Drain(dctx)
	switch {
	case derr == nil:
		log.Printf("sdtd: drained cleanly")
	case errors.Is(derr, context.DeadlineExceeded):
		log.Printf("sdtd: grace expired, running jobs hard-cancelled")
	default:
		log.Printf("sdtd: drain: %v", derr)
	}
	if code := cli.ExitCode(derr); code != 0 {
		return code
	}
	fmt.Fprintln(os.Stderr, "sdtd: bye")
	return 0
}
