// Command topogen generates topology configuration files for the SDT
// controller — the user-facing half of "simply using different topology
// configuration files" (§I).
//
// Usage:
//
//	topogen -gen fattree -params 4 -o fattree-k4.json
//	topogen -gen dragonfly -params 4,9,2,1
//	topogen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/topology"
)

var generators = []struct {
	name, params, desc string
}{
	{"fattree", "k", "k-ary fat-tree (k even)"},
	{"dragonfly", "a,g,h,p", "Dragonfly: a routers/group, g groups, h global links/router, p hosts/router"},
	{"mesh2d", "w,h,hosts", "2D mesh"},
	{"mesh3d", "x,y,z,hosts", "3D mesh"},
	{"torus2d", "w,h,hosts", "2D torus"},
	{"torus3d", "x,y,z,hosts", "3D torus"},
	{"bcube", "n,k", "BCube(n,k) with host switches"},
	{"hyperbcube", "n,l", "Hyper-BCube-style 2D server-centric"},
	{"line", "n,hosts", "chain of n switches"},
	{"ring", "n,hosts", "cycle of n switches"},
	{"star", "n,hosts", "hub + n leaves"},
	{"fullmesh", "n,hosts", "complete graph"},
}

func main() {
	gen := flag.String("gen", "", "generator name (see -list)")
	params := flag.String("params", "", "comma-separated integer parameters")
	name := flag.String("name", "", "override topology name")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list generators")
	stats := flag.Bool("stats", false, "print structural summary to stderr")
	flag.Parse()

	if *list {
		for _, g := range generators {
			fmt.Printf("%-12s params: %-14s %s\n", g.name, g.params, g.desc)
		}
		return
	}
	if *gen == "" {
		fmt.Fprintln(os.Stderr, "topogen: -gen required (try -list)")
		os.Exit(2)
	}
	var ps []int
	if *params != "" {
		for _, f := range strings.Split(*params, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintf(os.Stderr, "topogen: bad parameter %q: %v\n", f, err)
				os.Exit(2)
			}
			ps = append(ps, v)
		}
	}
	cfg := topology.Config{Name: *name, Generator: *gen, Params: ps}
	g, err := cfg.Build()
	if err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		s := g.Summary()
		fmt.Fprintf(os.Stderr, "%s: %d switches, %d hosts, %d links (radix %d, diameter %d, %d switch ports)\n",
			g.Name, s.Switches, s.Hosts, s.Links, s.Radix, s.Diameter, s.SwitchPortsUsed)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := g.ToConfig().WriteConfig(w); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}
