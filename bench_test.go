// Root benchmark harness: one testing.B benchmark per table and figure
// of the paper (run with `go test -bench=. -benchmem`), plus ablation
// benches for the design choices DESIGN.md calls out. Custom metrics
// report the headline numbers (overhead %, deviation %, speedups) so a
// bench run doubles as a reproduction check.
package sdt_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
)

// BenchmarkTable1 regenerates the qualitative tool comparison.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1().Format(io.Discard)
	}
}

// BenchmarkFig11 regenerates the latency-overhead sweep (Fig. 11).
func BenchmarkFig11(b *testing.B) {
	var max float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(b.Context(), 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		max = res.MaxOverhead
	}
	b.ReportMetric(max*100, "max-overhead-%")
}

// BenchmarkFig12 regenerates the incast bandwidth test (Fig. 12),
// PFC-on panel on SDT. Allocation reporting feeds the BENCH_*.json
// perf trajectory: the typed-event engine + packet pool cut this from
// ~4.85M allocs/op (seed) to a few thousand.
func BenchmarkFig12(b *testing.B) {
	b.ReportAllocs()
	var agg float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(b.Context(), core.SDT, true, 200*netsim.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		agg = res.AggregateGbps
	}
	b.ReportMetric(agg, "aggregate-Gbps")
}

// BenchmarkTable2 regenerates the TP-method comparison (Table II) over
// a zoo subset.
func BenchmarkTable2(b *testing.B) {
	var cover int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(b.Context(), 30, 1)
		if err != nil {
			b.Fatal(err)
		}
		cover = res.Rows[0].ZooCoverage
	}
	b.ReportMetric(float64(cover), "sdt-zoo-coverage")
}

// BenchmarkTable3 regenerates the routing/deadlock matrix (Table III).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if !row.DeadlockFree {
				b.Fatalf("%s: cycle", row.Topology)
			}
		}
	}
}

// BenchmarkTable4 regenerates the application ACT comparison
// (Table IV) at 8 ranks with two applications.
func BenchmarkTable4(b *testing.B) {
	var dev float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(b.Context(), 8, []string{"HPCG", "IMB"}, 1)
		if err != nil {
			b.Fatal(err)
		}
		dev = res.MaxDeviation
	}
	b.ReportMetric(dev*100, "max-ACT-deviation-%")
}

// BenchmarkFig13 regenerates the evaluation-time scaling study
// (Fig. 13) at reduced message volume, with allocation reporting for
// the perf trajectory.
func BenchmarkFig13(b *testing.B) {
	b.ReportAllocs()
	var simFactor float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(b.Context(), []int{2, 8, 16}, 64*1024, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		simFactor = res.Points[len(res.Points)-1].SimFactor
	}
	b.ReportMetric(simFactor, "sim-slowdown-x")
}

// BenchmarkIsolation regenerates the §VI-B hardware-isolation check.
func BenchmarkIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Isolation()
		if err != nil {
			b.Fatal(err)
		}
		if res.CrossDelivered {
			b.Fatal("isolation violated")
		}
	}
}

// BenchmarkActiveRouting regenerates the §VI-E active-routing study.
func BenchmarkActiveRouting(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.ActiveRouting(b.Context(), 8, 128*1024)
		if err != nil {
			b.Fatal(err)
		}
		red = res.Reduction
	}
	b.ReportMetric(red*100, "ACT-reduction-%")
}

// BenchmarkFlowTableUsage regenerates the §VII-C flow-table occupancy.
func BenchmarkFlowTableUsage(b *testing.B) {
	var perSwitch int
	for i := 0; i < b.N; i++ {
		res, err := experiments.FlowTableUsage()
		if err != nil {
			b.Fatal(err)
		}
		perSwitch = res.MergedPerSwitch[0]
	}
	b.ReportMetric(float64(perSwitch), "entries-per-switch")
}

// BenchmarkSharded runs one large open-loop cell — the shard-scale
// fabric (k=8 fat-tree, 100G links, 500 ns lookahead) at reduced flow
// count — through the conservative parallel executor at K ∈ {1, 2, 4}
// shard engines. Allocation reporting feeds the BENCH_*.json perf
// trajectory; the events metric pins that each K executes its full
// deterministic schedule.
func BenchmarkSharded(b *testing.B) {
	g := topology.FatTree(8)
	cfg := netsim.DefaultConfig()
	cfg.LinkBps = 100e9
	cfg.PropDelay = 500 * netsim.Nanosecond
	need := g.SwitchPortCount() + g.HostFacingPorts()
	var sw []projection.PhysicalSwitch
	for i := 0; i < (need+87)/88+1; i++ {
		sw = append(sw, projection.H3CS6861(fmt.Sprintf("s6861-%d", i)))
	}
	tb, err := core.NewTestbed(sw, []*topology.Graph{g})
	if err != nil {
		b.Fatal(err)
	}
	fs, err := loadgen.Spec{
		Ranks: len(g.Hosts()), Pattern: loadgen.Uniform(),
		Sizes: loadgen.ScaleSizes(loadgen.WebSearch(), 1.0/16),
		Load:  0.8, Flows: 600, Seed: 1, LinkBps: cfg.LinkBps,
	}.Generate()
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var events int64
			for i := 0; i < b.N; i++ {
				sched := append([]netsim.Flow(nil), fs.Flows...)
				res, err := core.Run(b.Context(), tb,
					core.Scenario{Topo: g, Flows: sched, Mode: core.FullTestbed},
					core.WithSimConfig(cfg), core.WithShards(k))
				if err != nil {
					b.Fatal(err)
				}
				if res.Shards != k {
					b.Fatalf("effective shards = %d, want %d", res.Shards, k)
				}
				events = res.Events
			}
			b.ReportMetric(float64(events), "events")
		})
	}
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationPartition contrasts the paper's balanced objective
// with pure min-cut (§IV-C, Fig. 8): cut edges vs port imbalance.
func BenchmarkAblationPartition(b *testing.B) {
	g := topology.Torus3D(4, 4, 4, 1)
	var balImb, mcImb float64
	var balCut, mcCut int
	for i := 0; i < b.N; i++ {
		bal, err := partition.Cut(g, 3, partition.Options{Objective: partition.Balanced})
		if err != nil {
			b.Fatal(err)
		}
		mc, err := partition.Cut(g, 3, partition.Options{Objective: partition.MinCut})
		if err != nil {
			b.Fatal(err)
		}
		balImb, mcImb = bal.Imbalance, mc.Imbalance
		balCut, mcCut = bal.CutEdges, mc.CutEdges
	}
	b.ReportMetric(balImb*100, "balanced-imbalance-%")
	b.ReportMetric(mcImb*100, "mincut-imbalance-%")
	b.ReportMetric(float64(balCut), "balanced-cut")
	b.ReportMetric(float64(mcCut), "mincut-cut")
}

// BenchmarkAblationCutThrough measures the latency effect of
// cut-through vs store-and-forward in the fabric model.
func BenchmarkAblationCutThrough(b *testing.B) {
	g := topology.Line(8, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		b.Fatal(err)
	}
	rtt := func(ct bool) netsim.Time {
		cfg := netsim.DefaultConfig()
		cfg.CutThrough = ct
		net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), cfg, nil, false)
		if err != nil {
			b.Fatal(err)
		}
		hosts := g.Hosts()
		return netsim.MeanRTT(netsim.MeasurePingpong(net, hosts[0], hosts[7], 4096, 10))
	}
	var ct, sf netsim.Time
	for i := 0; i < b.N; i++ {
		ct, sf = rtt(true), rtt(false)
	}
	b.ReportMetric(float64(ct)/1e6, "cutthrough-rtt-us")
	b.ReportMetric(float64(sf)/1e6, "storefwd-rtt-us")
}

// BenchmarkAblationDCQCN measures DCQCN's effect on PFC pause volume
// under incast (the §VI-E congestion-control deployment).
func BenchmarkAblationDCQCN(b *testing.B) {
	g := topology.Line(8, 1)
	routes, err := routing.ShortestPath{}.Compute(g)
	if err != nil {
		b.Fatal(err)
	}
	run := func(dcqcn bool) int64 {
		cfg := netsim.DefaultConfig()
		cfg.ECN = true
		cfg.DCQCN = dcqcn
		net, err := netsim.NewNetwork(g, netsim.NewRouteForwarder(routes), cfg, nil, false)
		if err != nil {
			b.Fatal(err)
		}
		hosts := g.Hosts()
		for j, h := range hosts {
			if j == 3 {
				continue
			}
			net.Host(h).Send(hosts[3], 1, 2<<20)
		}
		net.Sim.Run(0)
		return net.PausesSent
	}
	var on, off int64
	for i := 0; i < b.N; i++ {
		on, off = run(true), run(false)
	}
	b.ReportMetric(float64(on), "pauses-dcqcn-on")
	b.ReportMetric(float64(off), "pauses-dcqcn-off")
}

// BenchmarkAblationEntryMerge contrasts the tag-encoded (merged) flow
// table encoding against the naive per-in-port scheme (§VII-C).
func BenchmarkAblationEntryMerge(b *testing.B) {
	g := topology.FatTree(4)
	switches := []projection.PhysicalSwitch{
		projection.Commodity64("a"), projection.Commodity64("b"), projection.Commodity64("c"),
	}
	cab, err := projection.PlanCabling(switches, []*topology.Graph{g}, partition.Options{})
	if err != nil {
		b.Fatal(err)
	}
	plan, err := projection.Project(g, cab, partition.Options{})
	if err != nil {
		b.Fatal(err)
	}
	routes, err := routing.FatTreeDFS{}.Compute(g)
	if err != nil {
		b.Fatal(err)
	}
	var merged, naive int
	for i := 0; i < b.N; i++ {
		m, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{Encoding: projection.TagEncoded})
		if err != nil {
			b.Fatal(err)
		}
		n, err := projection.CompileFlowTables(plan, routes, projection.CompileOptions{Encoding: projection.PerInPort})
		if err != nil {
			b.Fatal(err)
		}
		merged, naive = projection.EntryCount(m), projection.EntryCount(n)
	}
	b.ReportMetric(float64(merged), "entries-merged")
	b.ReportMetric(float64(naive), "entries-per-in-port")
}
