// Package sdt is the public facade of the SDT (Software Defined
// Topology Testbed) library — a reproduction of Chen et al., "SDT: A
// Low-cost and Topology-reconfigurable Testbed for Network Research"
// (IEEE CLUSTER 2023).
//
// The facade re-exports the entry points a downstream user needs:
// building logical topologies, planning a physical cabling, projecting
// topologies onto commodity OpenFlow switches via Link Projection,
// computing Table III routing strategies with verified deadlock
// freedom, and running workloads on the packet-level engine in full-
// testbed, SDT, or simulator mode.
//
// Execution goes through one composable surface: a Scenario (topology,
// trace, mode, and optional host placement / strategy / sim-config
// overrides) run with Run(ctx, tb, scenario, ...Option), or fanned out
// one simulation per worker with Sweep(ctx, jobs, ...Option). Options
// attach the cross-cutting concerns — WithHosts, WithStrategy,
// WithSimConfig, WithTelemetry, WithObserver, WithDeadline,
// WithWorkers, WithShards — and the context cancels cooperatively
// *inside* the event loop: the engine polls a stop flag on an
// event-count stride, so a cancelled run or sweep stops
// mid-simulation, not between jobs.
//
// Large fabrics can additionally be sharded *within* one run:
// WithShards(k) partitions the topology switch-wise (the same
// partitioner that projects topologies onto physical switches) and
// executes it as k conservative parallel engines advancing in
// lock-step lookahead windows —
//
//	res, err := sdt.Run(ctx, tb, sdt.Scenario{Topo: topo, Flows: fs.Flows},
//		sdt.WithShards(4))
//
// For a fixed shard count results are byte-identical across reruns,
// machines and worker counts (Shards=1 matches the serial engine
// exactly; different counts are distinct deterministic schedules), and
// runs the executor cannot shard — faults, reconfiguration, SDT mode,
// Tick observers, zero propagation delay — silently fall back to
// serial, reported via RunResult.Shards.
//
// Quickstart:
//
//	topo := sdt.FatTree(4)
//	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo})
//	...
//	res, err := sdt.Run(ctx, tb, sdt.Scenario{
//		Topo:  topo,
//		Trace: sdt.AlltoallTrace(8, 64<<10, 4),
//		Mode:  sdt.ModeSDT,
//	})
//
// and a batch, one simulation per core, telemetry sampled during each
// run:
//
//	col := sdt.NewTelemetryCollector(topo, sdt.Millisecond, 0)
//	results, err := sdt.Sweep(ctx, jobs, sdt.WithWorkers(0), sdt.WithTelemetry(col))
//
// Workloads come in two families (WORKLOADS.md is the catalogue):
// closed-loop MPI trace replay (PingpongTrace, AlltoallTrace, HPCG,
// HPL, ...) via Scenario.Trace, and open-loop synthetic traffic via
// Scenario.Flows — seeded Poisson flow arrivals at a target load
// factor under a pluggable pattern (uniform, permutation, incast,
// outcast, hotspot, rack-local) with configurable size distributions:
//
//	fs := sdt.LoadSpec{
//		Ranks: 16, Load: 0.5, Flows: 10_000,
//		Pattern: sdt.PatternIncast(8), Sizes: sdt.WebSearchSizes(),
//		Seed: 7,
//	}.MustGenerate()
//	res, err := sdt.Run(ctx, tb, sdt.Scenario{Topo: topo, Flows: fs.Flows})
//	fct := sdt.MeasureFCT(fs.Flows, 10e9, 0, nil) // per-bucket p50/p95/p99
//
// Open-loop schedules can trade per-packet fidelity for scale:
// Scenario{..., Fidelity: sdt.FidelityFlow} runs the same schedule
// through a max-min fair-share fluid approximation whose cost grows
// with the number of flows instead of bytes × hops, reaching fabrics
// (a 65k-host fat-tree) the packet engine cannot touch. MeasureFCT
// consumes the completions identically; the packet-vs-flow agreement
// envelope is pinned by internal/flowsim's differential harness.
//
// A Scenario can also carry a FaultSpec — seeded, deterministic link
// and switch failures (one-shot events or MTBF/MTTR flaps). Dead
// elements drop traversing packets; the controller reroute notices
// after the spec's repair latency and patches the live FIB around the
// outage (healthy destinations keep their strategy routes, broken ones
// move to shortest paths on the surviving fabric, and recovery
// restores the originals). The result reports packets lost,
// reconvergence time per fault, and route churn:
//
//	link := sdt.PickCoreEdges(topo, 1, 7)[0]
//	res, err := sdt.Run(ctx, tb, sdt.Scenario{
//		Topo: topo, Flows: fs.Flows,
//		Faults: &sdt.FaultSpec{Events: []sdt.FaultEvent{
//			{At: sdt.Millisecond, Kind: sdt.FaultLinkDown, Elem: link},
//		}},
//	})
//	res.Recovery.Format(os.Stdout) // repair + reconvergence per fault
//
// Or a ReconfigSpec — live topology transitions mid-run. Each executes
// the staged drain→transition→reconverge protocol: the links the target
// topology claims drain first, the target is projected, checked, and
// compiled at the control plane (any failure aborts to a rollback onto
// the old topology), and the fabric then reconverges. The testbed must
// be cabled for both topologies:
//
//	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo, target})
//	...
//	res, err := sdt.Run(ctx, tb, sdt.Scenario{
//		Topo: topo, Flows: fs.Flows,
//		Reconfig: &sdt.ReconfigSpec{Transitions: []sdt.ReconfigTransition{
//			{At: sdt.Millisecond, Target: target},
//		}},
//	})
//	res.Reconfig.Format(os.Stdout) // loss, churn, reconvergence, cost columns
//
// The older positional entry points (Testbed.RunTrace,
// Testbed.RunBatch) remain as deprecated thin wrappers over Run/Sweep
// and produce identical results.
//
// The full implementation lives in the internal packages; see DESIGN.md
// for the system inventory, WORKLOADS.md for the workload catalogue,
// and EXPERIMENTS.md for the reproduced evaluation.
package sdt

import (
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/loadgen"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/reconfig"
	"repro/internal/routing"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Topology is a logical network topology (switches + hosts + ports).
type Topology = topology.Graph

// TopologyConfig is the JSON topology description format.
type TopologyConfig = topology.Config

// Topology generators (the paper's Fig. 1 set and helpers).
var (
	NewTopology = topology.New
	FatTree     = topology.FatTree
	Dragonfly   = topology.Dragonfly
	Mesh2D      = topology.Mesh2D
	Mesh3D      = topology.Mesh3D
	Torus2D     = topology.Torus2D
	Torus3D     = topology.Torus3D
	BCube       = topology.BCube
	HyperBCube  = topology.HyperBCube
	Line        = topology.Line
	Ring        = topology.Ring
	Star        = topology.Star
	FullMesh    = topology.FullMesh
	RandomWAN   = topology.RandomWAN
	TopologyZoo = topology.Zoo
	LoadConfig  = topology.LoadConfig
)

// PhysicalSwitch describes one commodity OpenFlow switch.
type PhysicalSwitch = projection.PhysicalSwitch

// Cabling is the fixed physical wiring of an SDT deployment.
type Cabling = projection.Cabling

// Plan is a Link Projection result: the logical→physical port mapping.
type Plan = projection.Plan

// Projection entry points.
var (
	H3CS6861    = projection.H3CS6861
	Commodity64 = projection.Commodity64
	PlanCabling = projection.PlanCabling
	Project     = projection.Project
)

// PartitionOptions tunes the multilevel topology partitioner (§IV-C).
type PartitionOptions = partition.Options

// Routing strategies (Table III) and deadlock verification.
type (
	// Routes is a computed forwarding rule set.
	Routes = routing.Routes
	// Strategy computes Routes for a topology.
	Strategy = routing.Strategy
	// FIB is a compiled forwarding table: Routes flattened into dense
	// per-switch arrays so the per-hop decision is one array load.
	// Obtain one with Routes.Compile (or the memoized Routes.FIB); the
	// packet engine's forwarders run on it automatically.
	FIB = routing.FIB
)

// FixedRoutes adapts an already-computed route set into a Strategy,
// so a Scenario can carry routes produced outside a strategy (e.g.
// the Network Monitor's UGAL active routes).
type FixedRoutes = routing.Fixed

// Routing constructors and helpers.
var (
	StrategyFor        = routing.ForTopology
	VerifyDeadlockFree = routing.VerifyDeadlockFree
)

// Controller is the SDT controller (§V): check, deploy, reconfigure.
type Controller = controller.Controller

// ControllerOptions tunes one deployment.
type ControllerOptions = controller.Options

// NewController builds a controller over switches able to host topos.
var NewController = controller.NewFromTopologies

// Testbed couples the controller with the packet-level engine.
type Testbed = core.Testbed

// RunResult reports one workload execution.
type RunResult = core.RunResult

// Scenario is one complete workload description — topology, trace,
// mode, and optional host placement / routing strategy / sim-config
// overrides — the unit Run executes and Sweep batches.
type Scenario = core.Scenario

// Job is one Sweep entry: a Scenario bound to the Testbed running it.
type Job = core.Job

// Option is a functional option for Run and Sweep.
type Option = core.Option

// RunHooks observes a run's lifecycle (WithObserver): network built,
// periodic in-simulation ticks, run finished.
type RunHooks = core.Hooks

// The composable execution surface: Run executes one Scenario, Sweep a
// batch of jobs one simulation per worker. Both stop mid-simulation on
// context cancellation. Options attach overrides and observers.
var (
	Run           = core.Run
	Sweep         = core.Sweep
	WithHosts     = core.WithHosts
	WithStrategy  = core.WithStrategy
	WithSimConfig = core.WithSimConfig
	WithTelemetry = core.WithTelemetry
	WithObserver  = core.WithObserver
	WithDeadline  = core.WithDeadline
	WithWorkers   = core.WithWorkers
	WithShards    = core.WithShards
)

// TraceJob is one independent workload execution for Testbed.RunBatch.
//
// Deprecated: build Job values for Sweep instead.
type TraceJob = core.TraceJob

// ParallelFor is the worker-pool helper behind the parallel experiment
// sweeps: it runs independent jobs 0..n-1 across workers (0 = all
// cores, 1 = serial) and returns the lowest-index job error. For
// cancellable fan-outs, pass a context to ForEach.
func ParallelFor(workers, n int, job func(i int) error) error {
	return core.ParallelFor(workers, n, job)
}

// ForEach is ParallelFor with cooperative cancellation: once ctx ends
// no further job starts and the context's error is returned.
var ForEach = core.ForEach

// Mode selects the evaluation platform.
type Mode = core.Mode

// Evaluation platforms.
const (
	ModeFullTestbed = core.FullTestbed
	ModeSDT         = core.SDT
	ModeSimulator   = core.Simulator
)

// Fidelity selects how faithfully a run simulates the fabric: the
// packet-level engine (the zero value) or the flow-level max-min
// fair-share fluid approximation, whose cost scales with flow count
// instead of bytes × hops. Flow fidelity covers open-loop flow
// schedules on FullTestbed/Simulator runs; traces, faults,
// reconfiguration, shards, and SDT mode reject it loudly.
type Fidelity = core.Fidelity

// Simulation fidelities.
const (
	FidelityPacket = core.Packet
	FidelityFlow   = core.Flow
)

// WithFidelity overrides the scenario's simulation fidelity for one
// Run or every job of a Sweep.
var WithFidelity = core.WithFidelity

// Testbed constructors.
var (
	NewTestbed   = core.NewTestbed
	PaperTestbed = core.PaperTestbed
)

// SimConfig sets fabric and protocol parameters for the engine.
type SimConfig = netsim.Config

// Network is the packet-level fabric one run simulates; observers
// (RunHooks, telemetry) receive it to read counters mid-run.
type Network = netsim.Network

// TelemetryCollector samples per-logical-link byte counters inside a
// running simulation (§V-3 Network Monitor data plane). Attach one to
// a run with WithTelemetry.
type TelemetryCollector = telemetry.Collector

// NewTelemetryCollector builds a collector for a topology with the
// given sampling period (0 = 1 ms) and EWMA alpha (0 = 0.3).
var NewTelemetryCollector = telemetry.NewCollector

// SimTime is simulated (physical) time in picoseconds.
type SimTime = netsim.Time

// Simulated-time units.
const (
	Nanosecond  = netsim.Nanosecond
	Microsecond = netsim.Microsecond
	Millisecond = netsim.Millisecond
	Second      = netsim.Second
)

// DefaultSimConfig is the paper-calibrated configuration.
var DefaultSimConfig = netsim.DefaultConfig

// Congestion-control policy names for SimConfig.CC (empty keeps the
// legacy DCQCN-flag behaviour).
const (
	CCDCQCN   = netsim.CCDCQCN
	CCTimely  = netsim.CCTimely
	CCPFabric = netsim.CCPFabric
)

// CCPolicies lists the selectable congestion-control policies.
var CCPolicies = netsim.CCPolicies

// Trace is a replayable MPI-style application.
type Trace = workload.Trace

// Workload generators (§VI-D applications).
var (
	PingpongTrace  = workload.Pingpong
	AlltoallTrace  = workload.Alltoall
	AllreduceTrace = workload.AllreduceRing
	HPCGTrace      = workload.HPCG
	HPLTrace       = workload.HPL
	MiniGhostTrace = workload.MiniGhost
	MiniFETrace    = workload.MiniFE
	WorkloadByName = workload.ByName
)

// Flow is one open-loop transfer: rank-indexed endpoints, a size, an
// absolute start time, and — after a run — its completion result.
type Flow = netsim.Flow

// NewFlowApp drives a flow schedule through a network directly; most
// callers run flows through a Scenario instead (Scenario.Flows).
var NewFlowApp = netsim.NewFlowApp

// LoadSpec describes one synthetic open-loop workload: ranks, target
// load factor, pattern, size distribution, flow count, and seed.
// Equal specs generate byte-identical schedules.
type LoadSpec = loadgen.Spec

// LoadFlowSet is a generated schedule: run it live via Scenario.Flows
// or compile it with Trace() into a replayable workload trace.
type LoadFlowSet = loadgen.FlowSet

// TrafficPattern chooses communicating pairs for a LoadSpec.
type TrafficPattern = loadgen.Pattern

// SizeDist draws flow sizes for a LoadSpec.
type SizeDist = loadgen.SizeDist

// CDFPoint is one point of an empirical flow-size CDF for NewSizeCDF:
// a fraction Frac of flows are of size <= Bytes.
type CDFPoint = loadgen.CDFPoint

// Traffic patterns (the loadgen catalogue; see WORKLOADS.md).
var (
	PatternUniform     = loadgen.Uniform
	PatternPermutation = loadgen.Permutation
	PatternIncast      = loadgen.Incast
	PatternOutcast     = loadgen.Outcast
	PatternHotspot     = loadgen.Hotspot
	PatternRackLocal   = loadgen.RackLocal
	PatternByName      = loadgen.PatternByName
)

// Flow-size distributions.
var (
	FixedSize       = loadgen.FixedSize
	WebSearchSizes  = loadgen.WebSearch
	DataMiningSizes = loadgen.DataMining
	ScaleSizes      = loadgen.ScaleSizes
	NewSizeCDF      = loadgen.NewCDF
)

// FCTReport is the bucketed flow-completion-time summary of a finished
// open-loop run: per size bucket, FCT and slowdown percentiles.
type FCTReport = telemetry.FCTReport

// FaultSpec schedules link/switch failures during a run: one-shot
// timed events plus seeded MTBF/MTTR flap processes. Attach one via
// Scenario.Faults — dead elements drop traversing packets, the
// controller reroute patches the live FIB after the spec's repair
// latency, and the RunResult carries FaultDrops, Incomplete, and
// Recovery. Equal specs expand to byte-identical schedules.
type FaultSpec = faults.Spec

// FaultEvent is one scheduled fault: a kind, an element (edge ID for
// link kinds, switch vertex ID for switch kinds), and an absolute
// simulated time.
type FaultEvent = faults.Event

// FaultFlap is a repeating MTBF/MTTR failure process on one element.
type FaultFlap = faults.Flap

// Fault event kinds.
const (
	FaultLinkDown   = faults.LinkDown
	FaultLinkUp     = faults.LinkUp
	FaultSwitchDown = faults.SwitchDown
	FaultSwitchUp   = faults.SwitchUp
)

// Fault helpers: flap constructors and deterministic failed-link
// selection (switch-switch edges only, so destinations stay attached).
var (
	NewLinkFlap   = faults.LinkFlap
	NewSwitchFlap = faults.SwitchFlap
	CoreEdges     = faults.CoreEdges
	PickCoreEdges = faults.PickCoreEdges
)

// Recovery summarises a fault run: per-fault repair and reconvergence
// times, route churn, packets lost, and incomplete flows (available as
// RunResult.Recovery).
type Recovery = telemetry.Recovery

// RecoveryEvent is the lifecycle of one fault in a Recovery.
type RecoveryEvent = telemetry.RecoveryEvent

// ReconfigSpec schedules live topology transitions during a run.
// Attach one via Scenario.Reconfig — each transition executes the
// staged drain→transition→reconverge protocol: the physical links the
// target claims drain first (in-flight packets drop, PFC trees unwind),
// the target is then projected, checked, and compiled at the control
// plane with abort-to-rollback on any failure, and finally the fabric
// reconverges while the run result's Reconfig report records packets
// lost, reconvergence time, rule churn, and the cost-model downtime and
// price columns. Equal specs expand to byte-identical schedules.
// Mutually exclusive with Scenario.Faults.
type ReconfigSpec = reconfig.Spec

// ReconfigTransition is one timed topology transition in a
// ReconfigSpec: the target graph, the absolute drain time, optional
// stage-window overrides, and an optional validation hook that can veto
// the commit (forcing a rollback).
type ReconfigTransition = reconfig.Transition

// ReconfigReport summarises a reconfiguration run (available as
// RunResult.Reconfig).
type ReconfigReport = telemetry.ReconfigReport

// TransitionRecord is the lifecycle of one topology transition in a
// ReconfigReport.
type TransitionRecord = telemetry.TransitionRecord

// MeasureFCT buckets a finished flow schedule into FCT/slowdown
// percentiles per flow-size bucket.
var MeasureFCT = telemetry.MeasureFCT
