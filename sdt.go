// Package sdt is the public facade of the SDT (Software Defined
// Topology Testbed) library — a reproduction of Chen et al., "SDT: A
// Low-cost and Topology-reconfigurable Testbed for Network Research"
// (IEEE CLUSTER 2023).
//
// The facade re-exports the entry points a downstream user needs:
// building logical topologies, planning a physical cabling, projecting
// topologies onto commodity OpenFlow switches via Link Projection,
// computing Table III routing strategies with verified deadlock
// freedom, and running workloads on the packet-level engine in full-
// testbed, SDT, or simulator mode — serially, or one simulation per
// core through Testbed.RunBatch / ParallelFor.
//
// Quickstart:
//
//	topo := sdt.FatTree(4)
//	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo})
//	...
//	res, err := tb.RunTrace(topo, sdt.AlltoallTrace(8, 64<<10, 4), nil, sdt.ModeSDT)
//
// The full implementation lives in the internal packages; see DESIGN.md
// for the system inventory and EXPERIMENTS.md for the reproduced
// evaluation.
package sdt

import (
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/partition"
	"repro/internal/projection"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Topology is a logical network topology (switches + hosts + ports).
type Topology = topology.Graph

// TopologyConfig is the JSON topology description format.
type TopologyConfig = topology.Config

// Topology generators (the paper's Fig. 1 set and helpers).
var (
	NewTopology = topology.New
	FatTree     = topology.FatTree
	Dragonfly   = topology.Dragonfly
	Mesh2D      = topology.Mesh2D
	Mesh3D      = topology.Mesh3D
	Torus2D     = topology.Torus2D
	Torus3D     = topology.Torus3D
	BCube       = topology.BCube
	HyperBCube  = topology.HyperBCube
	Line        = topology.Line
	Ring        = topology.Ring
	Star        = topology.Star
	FullMesh    = topology.FullMesh
	RandomWAN   = topology.RandomWAN
	TopologyZoo = topology.Zoo
	LoadConfig  = topology.LoadConfig
)

// PhysicalSwitch describes one commodity OpenFlow switch.
type PhysicalSwitch = projection.PhysicalSwitch

// Cabling is the fixed physical wiring of an SDT deployment.
type Cabling = projection.Cabling

// Plan is a Link Projection result: the logical→physical port mapping.
type Plan = projection.Plan

// Projection entry points.
var (
	H3CS6861    = projection.H3CS6861
	Commodity64 = projection.Commodity64
	PlanCabling = projection.PlanCabling
	Project     = projection.Project
)

// PartitionOptions tunes the multilevel topology partitioner (§IV-C).
type PartitionOptions = partition.Options

// Routing strategies (Table III) and deadlock verification.
type (
	// Routes is a computed forwarding rule set.
	Routes = routing.Routes
	// Strategy computes Routes for a topology.
	Strategy = routing.Strategy
	// FIB is a compiled forwarding table: Routes flattened into dense
	// per-switch arrays so the per-hop decision is one array load.
	// Obtain one with Routes.Compile (or the memoized Routes.FIB); the
	// packet engine's forwarders run on it automatically.
	FIB = routing.FIB
)

// Routing constructors and helpers.
var (
	StrategyFor        = routing.ForTopology
	VerifyDeadlockFree = routing.VerifyDeadlockFree
)

// Controller is the SDT controller (§V): check, deploy, reconfigure.
type Controller = controller.Controller

// ControllerOptions tunes one deployment.
type ControllerOptions = controller.Options

// NewController builds a controller over switches able to host topos.
var NewController = controller.NewFromTopologies

// Testbed couples the controller with the packet-level engine.
type Testbed = core.Testbed

// RunResult reports one workload execution.
type RunResult = core.RunResult

// TraceJob is one independent workload execution for Testbed.RunBatch,
// the worker-pool batch runner (one simulation per core).
type TraceJob = core.TraceJob

// ParallelFor is the worker-pool helper behind the parallel experiment
// sweeps: it runs independent jobs 0..n-1 across workers (0 = all
// cores, 1 = serial) and returns the lowest-index job error.
func ParallelFor(workers, n int, job func(i int) error) error {
	return core.ParallelFor(workers, n, job)
}

// Mode selects the evaluation platform.
type Mode = core.Mode

// Evaluation platforms.
const (
	ModeFullTestbed = core.FullTestbed
	ModeSDT         = core.SDT
	ModeSimulator   = core.Simulator
)

// Testbed constructors.
var (
	NewTestbed   = core.NewTestbed
	PaperTestbed = core.PaperTestbed
)

// SimConfig sets fabric and protocol parameters for the engine.
type SimConfig = netsim.Config

// SimTime is simulated (physical) time in picoseconds.
type SimTime = netsim.Time

// Simulated-time units.
const (
	Nanosecond  = netsim.Nanosecond
	Microsecond = netsim.Microsecond
	Millisecond = netsim.Millisecond
	Second      = netsim.Second
)

// DefaultSimConfig is the paper-calibrated configuration.
var DefaultSimConfig = netsim.DefaultConfig

// Trace is a replayable MPI-style application.
type Trace = workload.Trace

// Workload generators (§VI-D applications).
var (
	PingpongTrace  = workload.Pingpong
	AlltoallTrace  = workload.Alltoall
	AllreduceTrace = workload.AllreduceRing
	HPCGTrace      = workload.HPCG
	HPLTrace       = workload.HPL
	MiniGhostTrace = workload.MiniGhost
	MiniFETrace    = workload.MiniFE
	WorkloadByName = workload.ByName
)
