// Facade test: exercises the library strictly through the public API
// in the root package, as a downstream user would.
package sdt_test

import (
	"context"
	"errors"
	"testing"

	sdt "repro"
)

// TestFacadeRunAndSweep drives the composable execution surface — Run
// with a Scenario plus options, and a Sweep over jobs — exactly as a
// downstream caller would.
func TestFacadeRunAndSweep(t *testing.T) {
	topo := sdt.FatTree(4)
	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo})
	if err != nil {
		t.Fatal(err)
	}
	col := sdt.NewTelemetryCollector(topo, 100*sdt.Microsecond, 0)
	var finished *sdt.RunResult
	res, err := sdt.Run(t.Context(), tb, sdt.Scenario{
		Topo:  topo,
		Trace: sdt.AlltoallTrace(4, 32<<10, 2),
		Mode:  sdt.ModeSDT,
	},
		sdt.WithTelemetry(col),
		sdt.WithObserver(sdt.RunHooks{
			Finish: func(r *sdt.RunResult, _ *sdt.Network) { finished = r },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if res.ACT <= 0 {
		t.Fatalf("ACT = %v", res.ACT)
	}
	if finished != res {
		t.Error("Finish hook did not receive the run result")
	}
	if col.Epochs() == 0 {
		t.Error("telemetry observer took no samples")
	}

	jobs := []sdt.Job{
		{TB: tb, Scenario: sdt.Scenario{Topo: topo, Trace: sdt.AlltoallTrace(4, 16<<10, 2), Mode: sdt.ModeFullTestbed}},
		{TB: tb, Scenario: sdt.Scenario{Topo: topo, Trace: sdt.AlltoallTrace(4, 16<<10, 2), Mode: sdt.ModeSDT}},
	}
	results, err := sdt.Sweep(t.Context(), jobs, sdt.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ACT <= 0 || results[1].ACT <= 0 {
		t.Fatalf("sweep results: %+v", results)
	}
	if results[1].ACT <= results[0].ACT {
		t.Errorf("SDT ACT %v <= full-testbed ACT %v; projection overhead missing", results[1].ACT, results[0].ACT)
	}

	// A cancelled context surfaces as ctx.Err().
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if _, err := sdt.Run(ctx, tb, jobs[0].Scenario); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Run: err = %v, want context.Canceled", err)
	}
}

// TestFacadeFlowFidelity runs one open-loop schedule at both
// fidelities through the facade: the flow-level run completes every
// flow, and the knob composes with WithFidelity as a sweep-wide
// override.
func TestFacadeFlowFidelity(t *testing.T) {
	topo := sdt.FatTree(4)
	tb, err := sdt.PaperTestbed([]*sdt.Topology{topo})
	if err != nil {
		t.Fatal(err)
	}
	gen := func() []sdt.Flow {
		return sdt.LoadSpec{
			Ranks: 8, Load: 0.5, Flows: 64,
			Pattern: sdt.PatternUniform(), Sizes: sdt.WebSearchSizes(),
			Seed: 3,
		}.MustGenerate().Flows
	}
	flows := gen()
	if _, err := sdt.Run(t.Context(), tb, sdt.Scenario{
		Topo: topo, Flows: flows, Fidelity: sdt.FidelityFlow,
	}); err != nil {
		t.Fatal(err)
	}
	fct := sdt.MeasureFCT(flows, 10e9, 0, nil)
	if fct.Completed != fct.Total || fct.Total != 64 {
		t.Fatalf("flow-fidelity run completed %d/%d flows", fct.Completed, fct.Total)
	}

	// WithFidelity overrides a packet-fidelity scenario sweep-wide.
	results, err := sdt.Sweep(t.Context(),
		[]sdt.Job{{TB: tb, Scenario: sdt.Scenario{Topo: topo, Flows: gen()}}},
		sdt.WithFidelity(sdt.FidelityFlow))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Events <= 0 {
		t.Fatalf("sweep results: %+v", results)
	}

	// Flow fidelity rejects what it cannot simulate — loudly, not
	// silently at packet level.
	if _, err := sdt.Run(t.Context(), tb, sdt.Scenario{
		Topo: topo, Trace: sdt.AlltoallTrace(4, 16<<10, 2),
		Fidelity: sdt.FidelityFlow,
	}); err == nil {
		t.Fatal("flow fidelity accepted a closed-loop trace")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	ft := sdt.FatTree(4)
	torus := sdt.Torus2D(4, 4, 1)
	tb, err := sdt.PaperTestbed([]*sdt.Topology{ft, torus})
	if err != nil {
		t.Fatal(err)
	}
	// Run a small alltoall in every mode.
	tr := sdt.AlltoallTrace(4, 16<<10, 2)
	for _, mode := range []sdt.Mode{sdt.ModeFullTestbed, sdt.ModeSDT, sdt.ModeSimulator} {
		res, err := tb.RunTrace(ft, tr, ft.Hosts()[:4], mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.ACT <= 0 {
			t.Fatalf("%v: ACT %v", mode, res.ACT)
		}
	}
	// Reconfigure via the controller.
	if _, err := tb.Ctl.Reconfigure(ft.Name, torus, sdt.ControllerOptions{RequireDeadlockFree: true}); err != nil {
		t.Fatal(err)
	}
	if tb.Ctl.Deployment(torus.Name) == nil {
		t.Fatal("torus not deployed after reconfigure")
	}
}

func TestFacadeStrategyAndDeadlock(t *testing.T) {
	g := sdt.Dragonfly(4, 9, 2, 1)
	strat := sdt.StrategyFor(g)
	routes, err := strat.Compute(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := sdt.VerifyDeadlockFree(routes); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProjection(t *testing.T) {
	g := sdt.Line(6, 1)
	cab, err := sdt.PlanCabling([]sdt.PhysicalSwitch{sdt.H3CS6861("sw")}, []*sdt.Topology{g}, sdt.PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sdt.Project(g, cab, sdt.PartitionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatal(err)
	}
	if plan.Stats().SelfLinks != 5 {
		t.Errorf("self links = %d, want 5", plan.Stats().SelfLinks)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, name := range []string{"HPCG", "HPL", "miniGhost", "miniFE", "IMB"} {
		tr, err := sdt.WorkloadByName(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if sdt.PingpongTrace(64, 3).Ranks != 2 {
		t.Error("pingpong ranks")
	}
}

func TestFacadeZooAndConfig(t *testing.T) {
	zoo := sdt.TopologyZoo(1)
	if len(zoo) != 261 {
		t.Fatalf("zoo = %d", len(zoo))
	}
	cfg := sdt.TopologyConfig{Name: "t", Generator: "torus2d", Params: []int{3, 3, 1}}
	g, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumSwitches() != 9 {
		t.Errorf("switches = %d", g.NumSwitches())
	}
}
